//! The OmpSs-style dataflow runtime over simulated heterogeneous devices.
//!
//! Execution is driven by the event-driven engine in
//! [`engine`](crate::engine); the legacy topological sweep is kept as
//! [`Runtime::run_sweep`] so its schedules can be compared against the
//! engine's (the `runtime_engine` bench and the full-stack tests do
//! exactly that).

use legato_core::graph::{TaskGraph, TaskState};
use legato_core::task::{AccessMode, RegionId, TaskDescriptor, TaskId};
use legato_core::units::{Joule, Seconds};
use legato_hw::device::{Device, DeviceId, DeviceSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::analyze::{self, AnalysisConfig, AnalysisContext, AnalysisReport, AnalysisState};
use crate::churn::{ChurnState, ChurnStats};
use crate::elastic::ElasticPool;
use crate::energy::{EnergyState, EnergyStats};
use crate::engine::EngineState;
use crate::error::RuntimeError;
use crate::pool::{DevicePools, TopologyState};
use crate::replication::{vote, ReplicaResult, ReplicationStats, Verdict};
use crate::resilience::{ResilienceState, ResilienceStats, RollbackEvent};
use crate::scheduler::Policy;
use crate::security::{SecurityState, SecurityStats};

/// Devices one (possibly replicated) attempt ran on, stored inline —
/// replica sets are bounded by [`MAX_REPLICAS`](crate::replication::MAX_REPLICAS),
/// so outcome records carry no heap allocation. Dereferences to a slice,
/// so indexing, `len()` and iteration read like the `Vec` it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaDevices {
    devices: [usize; crate::replication::MAX_REPLICAS],
    len: u8,
}

impl ReplicaDevices {
    /// Build from a slice of device indices (primary replica first).
    ///
    /// # Panics
    ///
    /// Panics if `devices` exceeds
    /// [`MAX_REPLICAS`](crate::replication::MAX_REPLICAS) entries.
    #[must_use]
    pub fn from_slice(devices: &[usize]) -> Self {
        let mut inline = [0usize; crate::replication::MAX_REPLICAS];
        inline[..devices.len()].copy_from_slice(devices);
        ReplicaDevices {
            devices: inline,
            len: devices.len() as u8,
        }
    }

    /// The device indices as a slice (primary replica first).
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.devices[..self.len as usize]
    }

    /// Engine-internal constructor from an already-inline array whose
    /// dead slots are zeroed (keeps derived equality honest).
    pub(crate) fn from_raw(devices: [usize; crate::replication::MAX_REPLICAS], len: u8) -> Self {
        debug_assert!(devices[len as usize..].iter().all(|&d| d == 0));
        ReplicaDevices { devices, len }
    }
}

impl std::ops::Deref for ReplicaDevices {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a ReplicaDevices {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Outcome of one task's (possibly replicated) execution.
///
/// `Copy`: with the device list inline, outcome records are plain 64-byte
/// values, so cloning the placement vector for a report is one `memcpy`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// The task.
    pub task: TaskId,
    /// Devices the final (accepted) attempt ran on; the first entry is
    /// the primary replica.
    pub devices: ReplicaDevices,
    /// Start of the accepted attempt.
    pub start: Seconds,
    /// Finish of the accepted attempt (all replicas joined).
    pub finish: Seconds,
    /// Whether the accepted value equals the golden value.
    pub correct: bool,
}

/// Result of a full run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use = "a run report carries the outcome of every task; dropping it unread discards the run"]
pub struct RunReport {
    /// Completion time of the last task.
    pub makespan: Seconds,
    /// Energy spent executing tasks (busy power).
    pub busy_energy: Joule,
    /// Busy energy plus idle draw of every device over the makespan.
    pub total_energy: Joule,
    /// Per-task outcomes in submission order (skipped/poisoned tasks are
    /// absent).
    pub placements: Vec<TaskOutcome>,
    /// Replication statistics.
    pub stats: ReplicationStats,
    /// Tasks that exhausted their retry budget (their dependents were
    /// poisoned and skipped), in submission order.
    pub failed: Vec<TaskId>,
    /// Checkpoint/restart counters; `Some` exactly when the runtime was
    /// built with a [`ResilienceConfig`](crate::resilience::ResilienceConfig)
    /// ([`EngineConfig::with_resilience`](crate::config::EngineConfig::with_resilience)).
    pub resilience: Option<ResilienceStats>,
    /// Security counters; `Some` exactly when the run executed
    /// confidential tasks — the security layer is pay-for-what-you-use,
    /// and an all-public run reports `None`.
    pub security: Option<SecurityStats>,
    /// Energy counters; `Some` exactly when the runtime was built with
    /// an [`EnergyConfig`](crate::energy::EnergyConfig)
    /// ([`EngineConfig::with_energy`](crate::config::EngineConfig::with_energy)).
    pub energy: Option<EnergyStats>,
    /// The static analysis report; `Some` exactly when the runtime was
    /// built with an [`AnalysisConfig`]
    /// ([`EngineConfig::with_analysis`](crate::config::EngineConfig::with_analysis))
    /// and the run started. In warn-only mode this is where findings
    /// surface; in enforce mode a report that reaches a `RunReport` is
    /// warning-only by construction (errors refuse the run).
    pub analysis: Option<AnalysisReport>,
    /// Malleability counters; `Some` exactly when the runtime was built
    /// with a [`ChurnConfig`](crate::churn::ChurnConfig)
    /// ([`EngineConfig::with_churn`](crate::config::EngineConfig::with_churn)).
    pub churn: Option<ChurnStats>,
}

impl RunReport {
    /// Whether every executed task finished with the correct value and
    /// nothing failed.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.failed.is_empty() && self.stats.is_correct()
    }
}

/// The task runtime: a device set, a policy, a dataflow graph, a fault
/// model, and the persistent state of the event-driven engine.
#[derive(Debug, Clone)]
pub struct Runtime {
    pub(crate) devices: Vec<Device>,
    pub(crate) fault_probs: Vec<f64>,
    pub(crate) graph: TaskGraph,
    pub(crate) policy: Policy,
    pub(crate) max_retries: u32,
    pub(crate) rng: SmallRng,
    pub(crate) engine: EngineState,
    pub(crate) resilience: Option<ResilienceState>,
    pub(crate) security: SecurityState,
    pub(crate) energy: EnergyState,
    /// Sharded placement state; `None` = flat O(D) scan per placement.
    pub(crate) pools: Option<DevicePools>,
    /// Topology cost model (inactive unless configured with pools).
    pub(crate) topology: TopologyState,
    /// Static analysis configuration and memoized report; `None` =
    /// analysis off.
    pub(crate) analysis: Option<AnalysisState>,
    /// Churn trace, live masks and deferred placements; `None` = the
    /// fleet is fixed for the runtime's lifetime.
    pub(crate) churn: Option<ChurnState>,
}

impl Runtime {
    /// Create a runtime over `specs` with a scheduling `policy` and a
    /// deterministic `seed` for the fault model.
    #[must_use]
    pub fn new(specs: Vec<DeviceSpec>, policy: Policy, seed: u64) -> Self {
        let devices = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| Device::new(DeviceId(i as u64), s))
            .collect::<Vec<_>>();
        Runtime {
            fault_probs: vec![0.0; devices.len()],
            devices,
            graph: TaskGraph::new(),
            policy,
            max_retries: 3,
            rng: SmallRng::seed_from_u64(seed),
            engine: EngineState::default(),
            resilience: None,
            security: SecurityState::default(),
            energy: EnergyState::default(),
            pools: None,
            topology: TopologyState::default(),
            analysis: None,
            churn: None,
        }
    }

    /// Run the static analyzer over the current graph and pillar
    /// configuration, returning the report without touching engine
    /// state. Uses the configured [`AnalysisConfig`] when the runtime
    /// was built with one
    /// ([`EngineConfig::with_analysis`](crate::config::EngineConfig::with_analysis)),
    /// the default config otherwise — so ad-hoc callers (benches, CI
    /// drivers) can lint any runtime.
    pub fn analyze(&self) -> AnalysisReport {
        let default_config;
        let config = match &self.analysis {
            Some(state) => &state.config,
            None => {
                default_config = AnalysisConfig::default();
                &default_config
            }
        };
        // Under churn, lint against the devices that are actually
        // available now, not the build-time fleet (satellite of the
        // placement-feasibility staleness fix). Churn is rare enough
        // that the clone is acceptable.
        let surviving;
        let devices: &[Device] = match &self.churn {
            Some(churn) if churn.available.iter().any(|&a| !a) => {
                surviving = self
                    .devices
                    .iter()
                    .zip(&churn.available)
                    .filter(|(_, &a)| a)
                    .map(|(d, _)| d.clone())
                    .collect::<Vec<_>>();
                &surviving
            }
            _ => &self.devices,
        };
        let cx = AnalysisContext {
            graph: &self.graph,
            devices,
            objective: self.energy.objective,
            resilience: self.resilience.as_ref().map(|r| &r.config),
        };
        analyze::run_lints(&cx, config)
    }

    /// Whether checkpoint/restart mode is enabled.
    #[must_use]
    pub fn resilience_enabled(&self) -> bool {
        self.resilience.is_some()
    }

    /// Security counters accumulated by the engine so far (also part of
    /// [`RunReport`]).
    pub fn security_stats(&self) -> SecurityStats {
        self.security.stats
    }

    /// The rollbacks performed so far, in order — a deterministic trace:
    /// the same seed and submissions produce the identical sequence.
    /// Empty when resilience is disabled.
    #[must_use]
    pub fn rollback_trace(&self) -> &[RollbackEvent] {
        self.resilience.as_ref().map_or(&[], |r| r.trace.as_slice())
    }

    /// The elastic-width pool tracked alongside device churn, re-fitted
    /// whenever a departure or crash leaves the surviving fleet narrower
    /// than its planned width
    /// ([`ChurnConfig::with_elastic_pool`](crate::churn::ChurnConfig::with_elastic_pool)).
    /// `None` when churn is disabled or no pool was attached.
    #[must_use]
    pub fn elastic_pool(&self) -> Option<&ElasticPool> {
        self.churn.as_ref().and_then(|c| c.elastic.as_ref())
    }

    /// Virtual time at which the last checkpoint (the current restore
    /// target) was committed; `None` before the first run plans its
    /// interval or when resilience is disabled.
    #[must_use]
    pub fn last_checkpoint_time(&self) -> Option<Seconds> {
        self.resilience
            .as_ref()
            .and_then(|r| r.last.as_ref())
            .map(|c| c.time)
    }

    /// The Young checkpoint interval planned for the current run; `None`
    /// before the first run plans it or when resilience is disabled.
    ///
    /// With the energy layer active, aggressive operating points raise
    /// the planned fault rate and *shorten* this interval — the
    /// undervolting/checkpointing co-optimization made observable.
    #[must_use]
    pub fn checkpoint_interval(&self) -> Option<Seconds> {
        self.resilience.as_ref().and_then(|r| r.interval)
    }

    /// The scheduling policy in force.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Change the scheduling policy (affects tasks not yet run).
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// Set the per-execution fault probability of device `idx` (silent
    /// data corruption model, e.g. an FPGA run below `Vmin`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `p` not in `[0, 1]`.
    pub fn set_fault_prob(&mut self, idx: usize, p: f64) {
        assert!(idx < self.devices.len(), "device {idx} out of range");
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.fault_probs[idx] = p;
    }

    /// Maximum re-executions after detected faults (default 3).
    pub fn set_max_retries(&mut self, retries: u32) {
        self.max_retries = retries;
    }

    /// Submit a task with data-access annotations; returns its id.
    ///
    /// Submission can happen at any point, including while a run is in
    /// progress (between [`Runtime::step`] calls or between
    /// [`Runtime::run`] calls): a task that is immediately ready joins
    /// the schedule at the engine's current virtual time, and a pending
    /// task is scheduled the moment its last dependence completes.
    pub fn submit<I, R>(&mut self, descriptor: TaskDescriptor, accesses: I) -> TaskId
    where
        I: IntoIterator<Item = (R, AccessMode)>,
        R: Into<RegionId>,
    {
        // The first non-public task activates the security layer
        // (platforms on TEE devices, producer tracking). All-public runs
        // never reach any security code path.
        if descriptor.requirements.security.seals_at_rest() {
            self.security.activate(&self.devices);
        }
        let id = self.graph.add_task(descriptor, accesses);
        if self.graph.state(id) == Ok(TaskState::Ready) {
            self.engine.push_ready(id);
        }
        id
    }

    /// Submit a task with *explicit* predecessors instead of inferred
    /// dependences — the tenant-submitted-DAG entry point
    /// ([`TaskGraph::add_task_with_deps`]): region accesses still feed
    /// liveness and later inference, but this task's ordering is exactly
    /// `deps`. The graph accepts under-ordered DAGs without complaint —
    /// racy or leaky submissions are what the static analyzer
    /// ([`EngineConfig::with_analysis`](crate::config::EngineConfig::with_analysis))
    /// exists to catch before the run starts.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Graph`] when a dependence names a task that has
    /// not been submitted (forward edges would break acyclicity).
    ///
    /// [`TaskGraph::add_task_with_deps`]: legato_core::graph::TaskGraph::add_task_with_deps
    pub fn submit_with_deps<I, R>(
        &mut self,
        descriptor: TaskDescriptor,
        accesses: I,
        deps: &[TaskId],
    ) -> Result<TaskId, RuntimeError>
    where
        I: IntoIterator<Item = (R, AccessMode)>,
        R: Into<RegionId>,
    {
        if descriptor.requirements.security.seals_at_rest() {
            self.security.activate(&self.devices);
        }
        let id = self.graph.add_task_with_deps(descriptor, accesses, deps)?;
        if self.graph.state(id) == Ok(TaskState::Ready) {
            self.engine.push_ready(id);
        }
        Ok(id)
    }

    /// Pre-size the graph for a workload of known scale: reserves node
    /// and edge storage so a large streaming submission (100k–1M tasks)
    /// does not pay amortized regrowth. Purely an optimization — the
    /// resulting schedule is identical with or without the call.
    pub fn reserve(&mut self, tasks: usize, edges: usize) {
        self.graph.reserve(tasks, edges);
    }

    /// Submit a batch of tasks buffered in a
    /// [`GraphBuilder`](legato_core::graph::GraphBuilder) in one bulk
    /// operation: the graph's edge storage is sized exactly before any
    /// task is wired, which is substantially cheaper than task-by-task
    /// [`Runtime::submit`] on 100k+-task graphs. Semantically identical
    /// to submitting the builder's tasks in order; returns the id range
    /// assigned to the batch.
    pub fn submit_batch(
        &mut self,
        builder: legato_core::graph::GraphBuilder,
    ) -> std::ops::Range<u64> {
        if builder
            .descriptors()
            .iter()
            .any(|d| d.requirements.security.seals_at_rest())
        {
            self.security.activate(&self.devices);
        }
        let n0 = self.graph.len();
        builder.build_into(&mut self.graph);
        for i in n0..self.graph.len() {
            let id = TaskId(i as u64);
            if self.graph.state(id) == Ok(TaskState::Ready) {
                self.engine.push_ready(id);
            }
        }
        n0 as u64..self.graph.len() as u64
    }

    /// Per-device placement evaluations performed so far (each is one
    /// roofline estimate plus scoring). The flat path evaluates every
    /// eligible device per attempt; the pooled path
    /// ([`EngineConfig::with_pools`](crate::config::EngineConfig::with_pools))
    /// prunes pools whose score lower bound cannot reach the top-k, so
    /// this counter is the sub-linearity observable — deliberately kept
    /// out of [`RunReport`] so pooled and flat reports stay comparable
    /// bit for bit.
    #[must_use]
    pub fn placement_evals(&self) -> u64 {
        self.engine.sched_evals
    }

    /// Number of device pools, or `None` when placement is unsharded.
    #[must_use]
    pub fn pool_count(&self) -> Option<usize> {
        self.pools.as_ref().map(DevicePools::pool_count)
    }

    /// The underlying dataflow graph.
    #[must_use]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The devices, with their accumulated energy meters.
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Execute every outstanding task with the **legacy topological
    /// sweep** and return the report.
    ///
    /// This is the pre-engine executor, kept as the comparison baseline:
    /// it walks the graph in topological (submission) order and commits
    /// every task's placement in that order, so a task that is ready
    /// early but submitted late cannot slot in front of already-committed
    /// device time. [`Runtime::run`] (the event-driven engine) schedules
    /// in event order instead and never does worse on dependency chains —
    /// the `runtime_engine` bench quantifies the gap on wide graphs.
    ///
    /// The sweep bypasses the persistent engine: its report covers
    /// exactly the tasks it executed, and the engine's queued events for
    /// those tasks are discarded (the sweep drains the graph, so
    /// [`Runtime::has_pending_events`] stays honest afterwards). The
    /// security layer is engine-only: rather than silently skipping
    /// enclave placement and seal accounting, the sweep refuses to run
    /// once any confidential task has been submitted — use
    /// [`Runtime::run`] for confidential workloads.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoDevices`] when the runtime has no devices;
    /// [`RuntimeError::InvalidWeight`] for an unusable
    /// [`Policy::Weighted`] weight; [`RuntimeError::Security`] when a
    /// confidential task has been submitted (the sweep cannot honour
    /// confidentiality and will not pretend to).
    pub fn run_sweep(&mut self) -> Result<RunReport, RuntimeError> {
        if self.devices.is_empty() {
            return Err(RuntimeError::NoDevices);
        }
        self.policy.validate()?;
        if self.security.active {
            return Err(RuntimeError::Security(
                "the topological sweep is security-unaware; use run() for workloads \
                 with confidential tasks"
                    .into(),
            ));
        }
        if self.energy.objective.is_some() {
            // Rung selection (baked into the specs) is honest in the
            // sweep, but a Pareto objective steers placement and only
            // the engine implements it.
            return Err(RuntimeError::invalid_parameter(
                "objective",
                "the topological sweep ignores Pareto objectives; use run() for \
                 energy-objective workloads",
            ));
        }
        if self.churn.is_some() {
            // The sweep has no event order to merge churn into; it would
            // silently run on the build-time fleet.
            return Err(RuntimeError::invalid_parameter(
                "churn",
                "the topological sweep ignores device churn; use run() for \
                 malleable fleets",
            ));
        }
        // The sweep executes every outstanding task itself; any ready
        // events the engine queued for them would be stale no-ops.
        self.engine.clear_events();
        let n = self.graph.len();
        let mut finish_at = vec![Seconds::ZERO; n];
        let mut placements = Vec::new();
        let mut stats = ReplicationStats::default();
        let mut failed = Vec::new();

        for task in self.graph.topological_order() {
            match self.graph.state(task)? {
                TaskState::Poisoned | TaskState::Failed | TaskState::Completed => continue,
                _ => {}
            }
            let desc = self.graph.descriptor(task)?.clone();
            let ready = self
                .graph
                .predecessors(task)?
                .iter()
                .map(|p| finish_at[p.index()])
                .fold(Seconds::ZERO, Seconds::max);

            let replicas = desc
                .requirements
                .criticality
                .replica_count()
                .min(self.devices.len());
            if replicas == 1 {
                stats.unreplicated += 1;
            } else {
                stats.replica_executions += (replicas - 1) as u64;
            }
            let golden = golden_value(task);

            let mut attempt_start = ready;
            let mut accepted: Option<(Vec<usize>, Seconds, Seconds, bool)> = None;
            for attempt in 0..=self.max_retries {
                let ranking = self
                    .policy
                    .rank(&self.devices, desc.work, desc.kind, attempt_start);
                let chosen: Vec<usize> = ranking.into_iter().take(replicas).collect();
                let mut results = Vec::with_capacity(chosen.len());
                let mut start = Seconds(f64::INFINITY);
                let mut finish = Seconds::ZERO;
                for &d in &chosen {
                    let (s, f) = self.devices[d].execute(attempt_start, desc.work, desc.kind);
                    if let Some(pools) = &mut self.pools {
                        pools.mark_dirty(d);
                    }
                    start = start.min(s);
                    finish = finish.max(f);
                    let faulty = self.rng.gen_range(0.0..1.0) < self.fault_probs[d];
                    let value = if faulty {
                        // Corrupt deterministically per draw but never equal
                        // to golden.
                        ReplicaResult(golden ^ (1 + self.rng.gen_range(0..u64::MAX - 1)))
                    } else {
                        ReplicaResult(golden)
                    };
                    results.push(value);
                }
                match vote(&results) {
                    Verdict::Accept(v) => {
                        let correct = v.0 == golden;
                        if !correct {
                            stats.silent_corruptions += 1;
                        }
                        accepted = Some((chosen, start, finish, correct));
                        break;
                    }
                    Verdict::Masked(v) => {
                        stats.masked += 1;
                        accepted = Some((chosen, start, finish, v.0 == golden));
                        break;
                    }
                    Verdict::Retry => {
                        stats.detected += 1;
                        if attempt < self.max_retries {
                            stats.retries += 1;
                            attempt_start = finish;
                        }
                    }
                }
            }

            match accepted {
                Some((devices, start, finish, correct)) => {
                    finish_at[task.index()] = finish;
                    self.graph.complete(task)?;
                    placements.push(TaskOutcome {
                        task,
                        devices: ReplicaDevices::from_slice(&devices),
                        start,
                        finish,
                        correct,
                    });
                }
                None => {
                    failed.push(task);
                    self.graph.fail(task)?;
                }
            }
        }

        let makespan = finish_at.iter().copied().fold(Seconds::ZERO, Seconds::max);
        let busy_energy: Joule = self.devices.iter().map(|d| d.meter().total()).sum();
        let idle_energy: Joule = self
            .devices
            .iter()
            .map(|d| {
                let idle_time = (makespan - d.meter().elapsed()).max(Seconds::ZERO);
                d.spec.idle_power * idle_time
            })
            .sum();
        Ok(RunReport {
            makespan,
            busy_energy,
            total_energy: busy_energy + idle_energy,
            placements,
            stats,
            failed,
            // The sweep ignores resilience mode entirely, so reporting
            // its counters here would imply coverage it does not have.
            resilience: None,
            security: None,
            energy: self
                .energy
                .active
                .then(|| self.energy.stats(busy_energy, idle_energy, makespan)),
            // Likewise: the sweep never runs the analyzer, and churn is
            // refused above.
            analysis: None,
            churn: None,
        })
    }

    /// Reset device availability and meters (keeps the graph).
    pub fn reset_devices(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
        if let Some(pools) = &mut self.pools {
            pools.mark_all_dirty();
        }
    }
}

/// The golden (fault-free) result value of a task: a SplitMix64 hash of
/// its id, so replicas agree exactly unless corrupted.
pub(crate) fn golden_value(task: TaskId) -> u64 {
    let mut z = task.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use legato_core::requirements::{Criticality, Requirements};
    use legato_core::task::{TaskKind, Work};

    fn specs() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::xeon_x86(),
            DeviceSpec::gtx1080(),
            DeviceSpec::fpga_kintex(),
        ]
    }

    fn chain(rt: &mut Runtime, n: usize, crit: Criticality) -> Vec<TaskId> {
        (0..n)
            .map(|_| {
                rt.submit(
                    TaskDescriptor::named("t")
                        .with_kind(TaskKind::Compute)
                        .with_work(Work::flops(1e9))
                        .with_requirements(Requirements::new().with_criticality(crit)),
                    [(0u64, AccessMode::InOut)],
                )
            })
            .collect()
    }

    #[test]
    fn empty_runtime_runs_empty_report() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        let rep = rt.run().unwrap();
        assert_eq!(rep.makespan, Seconds::ZERO);
        assert!(rep.placements.is_empty());
        assert!(rep.is_correct());
    }

    #[test]
    fn no_devices_is_an_error() {
        let mut rt = Runtime::new(vec![], Policy::Performance, 1);
        assert_eq!(rt.run(), Err(RuntimeError::NoDevices));
        let mut rt = Runtime::new(vec![], Policy::Performance, 1);
        assert_eq!(rt.run_sweep(), Err(RuntimeError::NoDevices));
    }

    #[test]
    fn invalid_weight_is_an_error_not_a_panic() {
        let mut rt = Runtime::new(specs(), Policy::Weighted(2.0), 1);
        chain(&mut rt, 2, Criticality::Normal);
        assert_eq!(rt.run(), Err(RuntimeError::InvalidWeight(2.0)));
        let mut rt = Runtime::new(specs(), Policy::Weighted(-0.5), 1);
        chain(&mut rt, 2, Criticality::Normal);
        assert_eq!(rt.run_sweep(), Err(RuntimeError::InvalidWeight(-0.5)));
    }

    #[test]
    fn chain_executes_in_order() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        chain(&mut rt, 5, Criticality::Normal);
        let rep = rt.run().unwrap();
        assert_eq!(rep.placements.len(), 5);
        for w in rep.placements.windows(2) {
            assert!(w[1].start >= w[0].finish);
        }
        assert!(rep.is_correct());
    }

    #[test]
    fn independent_tasks_spread_across_devices() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        for i in 0..6u64 {
            rt.submit(
                TaskDescriptor::named("p").with_work(Work::flops(5e10)),
                [(i, AccessMode::Out)],
            );
        }
        let rep = rt.run().unwrap();
        let used: std::collections::HashSet<usize> =
            rep.placements.iter().map(|p| p.devices[0]).collect();
        assert!(used.len() > 1, "work should spread, used {used:?}");
    }

    #[test]
    fn energy_policy_cuts_energy_vs_performance_policy() {
        let build = |policy| {
            let mut rt = Runtime::new(specs(), policy, 1);
            for i in 0..12u64 {
                rt.submit(
                    TaskDescriptor::named("nn")
                        .with_kind(TaskKind::Inference)
                        .with_work(Work::flops(66e9)),
                    [(i, AccessMode::Out)],
                );
            }
            rt.run().unwrap()
        };
        let perf = build(Policy::Performance);
        let green = build(Policy::Energy);
        assert!(
            green.busy_energy.0 < perf.busy_energy.0,
            "energy policy: {} vs {}",
            green.busy_energy,
            perf.busy_energy
        );
        assert!(green.makespan >= perf.makespan);
    }

    #[test]
    fn critical_tasks_replicate_on_distinct_devices() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        rt.submit(
            TaskDescriptor::named("crit")
                .with_work(Work::flops(1e9))
                .with_requirements(Requirements::new().with_criticality(Criticality::Critical)),
            [(0u64, AccessMode::Out)],
        );
        let rep = rt.run().unwrap();
        let devices = &rep.placements[0].devices;
        assert_eq!(devices.len(), 3);
        let unique: std::collections::HashSet<_> = devices.iter().collect();
        assert_eq!(unique.len(), 3, "replicas must use distinct devices");
        assert_eq!(rep.stats.replica_executions, 2);
    }

    #[test]
    fn faults_without_replication_are_silent() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 42);
        rt.set_fault_prob(0, 1.0);
        rt.set_fault_prob(1, 1.0);
        rt.set_fault_prob(2, 1.0);
        chain(&mut rt, 4, Criticality::Normal);
        let rep = rt.run().unwrap();
        assert_eq!(rep.stats.silent_corruptions, 4);
        assert!(!rep.is_correct());
        assert!(rep.failed.is_empty(), "silent faults do not fail tasks");
    }

    #[test]
    fn triple_replication_masks_single_device_faults() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 42);
        // Only the GPU is flaky; majority vote should mask it every time.
        rt.set_fault_prob(1, 1.0);
        chain(&mut rt, 6, Criticality::Critical);
        let rep = rt.run().unwrap();
        assert!(rep.is_correct(), "stats: {:?}", rep.stats);
        assert_eq!(rep.stats.masked, 6);
        assert_eq!(rep.stats.silent_corruptions, 0);
    }

    #[test]
    fn dual_replication_detects_and_retries() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 7);
        // Moderate fault rate on the GPU — the fastest device for this
        // work, so it is always in the replica set: mismatches occur but
        // retries eventually succeed.
        rt.set_fault_prob(1, 0.5);
        chain(&mut rt, 8, Criticality::High);
        let rep = rt.run().unwrap();
        assert!(rep.stats.detected > 0, "stats {:?}", rep.stats);
        assert_eq!(rep.stats.silent_corruptions, 0);
    }

    #[test]
    fn unmaskable_faults_fail_and_poison() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 3);
        // Every device always faults: dual replication can never agree.
        for i in 0..3 {
            rt.set_fault_prob(i, 1.0);
        }
        let ids = chain(&mut rt, 3, Criticality::High);
        let rep = rt.run().unwrap();
        assert_eq!(rep.failed, vec![ids[0]]);
        // Dependents were poisoned, not executed.
        assert_eq!(rep.placements.len(), 0);
        assert!(!rep.is_correct());
    }

    #[test]
    fn total_energy_includes_idle() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        chain(&mut rt, 3, Criticality::Normal);
        let rep = rt.run().unwrap();
        assert!(rep.total_energy.0 > rep.busy_energy.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rt = Runtime::new(specs(), Policy::Weighted(0.5), seed);
            rt.set_fault_prob(0, 0.3);
            chain(&mut rt, 10, Criticality::High);
            rt.run().unwrap()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn reset_devices_clears_meters() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        chain(&mut rt, 2, Criticality::Normal);
        let _ = rt.run().unwrap();
        rt.reset_devices();
        assert!(rt
            .devices()
            .iter()
            .all(|d| d.meter().total() == Joule::ZERO));
    }

    #[test]
    fn streaming_submission_joins_run_in_progress() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        let first = chain(&mut rt, 3, Criticality::Normal);
        // Drive the run partway: two events (first ready + first finish).
        assert!(rt.step().unwrap().is_some());
        assert!(rt.step().unwrap().is_some());
        // Submit more work *while the run is in progress*: one task
        // extending the existing chain, one independent task.
        let submitted_at = rt.now();
        assert!(submitted_at > Seconds::ZERO, "run must be in progress");
        let late_chain = rt.submit(
            TaskDescriptor::named("late").with_work(Work::flops(1e9)),
            [(0u64, AccessMode::InOut)],
        );
        let late_free = rt.submit(
            TaskDescriptor::named("free").with_work(Work::flops(1e9)),
            [(99u64, AccessMode::Out)],
        );
        let rep = rt.run().unwrap();
        assert_eq!(rep.placements.len(), 5);
        assert!(rep.is_correct());
        // The chain extension still ran after its predecessor.
        let finish_of = |id: TaskId| {
            rep.placements
                .iter()
                .find(|p| p.task == id)
                .map(|p| p.finish)
                .unwrap()
        };
        let start_of = |id: TaskId| {
            rep.placements
                .iter()
                .find(|p| p.task == id)
                .map(|p| p.start)
                .unwrap()
        };
        assert!(start_of(late_chain) >= finish_of(first[2]));
        // The independent latecomer starts no earlier than the virtual
        // time at which it was submitted.
        assert!(
            start_of(late_free) >= submitted_at,
            "latecomer started {} before its submission time {}",
            start_of(late_free),
            submitted_at
        );
    }

    #[test]
    fn repeated_runs_extend_the_same_report() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        chain(&mut rt, 2, Criticality::Normal);
        let first = rt.run().unwrap();
        assert_eq!(first.placements.len(), 2);
        chain(&mut rt, 2, Criticality::Normal);
        let second = rt.run().unwrap();
        assert_eq!(second.placements.len(), 4, "report is cumulative");
        assert!(second.makespan >= first.makespan);
        assert!(!rt.has_pending_events());
    }

    #[test]
    fn step_on_idle_engine_returns_none() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        assert_eq!(rt.step().unwrap(), None);
        chain(&mut rt, 1, Criticality::Normal);
        while rt.step().unwrap().is_some() {}
        assert_eq!(rt.step().unwrap(), None);
        assert_eq!(rt.now(), rt.report().makespan);
    }

    #[test]
    fn sweep_still_executes_everything() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        chain(&mut rt, 5, Criticality::Normal);
        let rep = rt.run_sweep().unwrap();
        assert_eq!(rep.placements.len(), 5);
        assert!(rep.is_correct());
        assert!(rt.graph().is_complete());
    }

    #[test]
    fn sweep_discards_queued_engine_events() {
        let mut rt = Runtime::new(specs(), Policy::Performance, 1);
        chain(&mut rt, 3, Criticality::Normal);
        assert!(rt.has_pending_events());
        let _ = rt.run_sweep().unwrap();
        assert!(
            !rt.has_pending_events(),
            "sweep must not leave phantom events behind"
        );
        assert_eq!(rt.step().unwrap(), None);
    }

    fn resilient_config(mtbf: f64) -> crate::resilience::ResilienceConfig {
        use legato_core::units::Bytes;
        let sizes = (0..64u64)
            .map(|r| (legato_core::task::RegionId(r), Bytes::mib(16)))
            .collect();
        crate::resilience::ResilienceConfig::new(Seconds(mtbf)).with_region_sizes(sizes)
    }

    fn resilient_rt(
        seed: u64,
        policy: Policy,
        config: crate::resilience::ResilienceConfig,
    ) -> Runtime {
        crate::config::EngineConfig::new()
            .with_devices(specs())
            .with_policy(policy)
            .with_seed(seed)
            .with_resilience(config)
            .build()
            .expect("valid engine config")
    }

    /// A serial chain of seconds-scale tasks (the resilience tests need
    /// virtual times comparable to checkpoint intervals and MTBFs).
    fn heavy_chain(rt: &mut Runtime, n: usize, crit: Criticality) -> Vec<TaskId> {
        (0..n)
            .map(|_| {
                rt.submit(
                    TaskDescriptor::named("t")
                        .with_kind(TaskKind::Compute)
                        .with_work(Work::flops(2e12))
                        .with_requirements(Requirements::new().with_criticality(crit)),
                    [(0u64, AccessMode::InOut)],
                )
            })
            .collect()
    }

    #[test]
    fn fault_free_resilient_run_checkpoints_without_rollbacks() {
        let mut rt = resilient_rt(1, Policy::Performance, resilient_config(5.0));
        heavy_chain(&mut rt, 40, Criticality::Normal);
        let rep = rt.run().unwrap();
        assert!(rep.is_correct());
        assert_eq!(rep.placements.len(), 40);
        let res = rep.resilience.expect("resilience enabled");
        assert_eq!(res.rollbacks, 0);
        assert!(
            res.checkpoints > 0,
            "long chain must cross several intervals: {res:?}"
        );
        assert!(res.checkpoint_bytes > legato_core::units::Bytes::ZERO);
        assert!(rt.last_checkpoint_time().is_some());
        assert!(rt.rollback_trace().is_empty());
    }

    #[test]
    fn exhausted_retries_roll_back_and_complete_instead_of_poisoning() {
        let build = |resilient: bool| {
            let mut cfg = crate::config::EngineConfig::new()
                .with_devices(specs())
                .with_policy(Policy::Performance)
                .with_seed(11)
                .with_max_retries(1);
            if resilient {
                cfg = cfg.with_resilience(resilient_config(5.0).with_max_rollbacks(500));
            }
            let mut rt = cfg.build().expect("valid engine config");
            // The GPU is the fastest device and always in the replica
            // set; a high fault rate with a tight retry budget exhausts
            // retries on some tasks.
            rt.set_fault_prob(1, 0.85);
            heavy_chain(&mut rt, 12, Criticality::High);
            rt
        };
        let mut plain = build(false);
        let baseline = plain.run().unwrap();
        assert!(
            !baseline.failed.is_empty(),
            "fault rate must exhaust the retry budget somewhere: {:?}",
            baseline.stats
        );
        assert!(baseline.placements.len() < 12, "cone must be poisoned");

        let mut resilient = build(true);
        let rep = resilient.run().unwrap();
        assert!(rep.failed.is_empty(), "rollback must recover: {rep:?}");
        assert_eq!(rep.placements.len(), 12);
        assert!(resilient.graph().is_complete());
        let res = rep.resilience.expect("resilience enabled");
        assert!(res.rollbacks > 0);
        assert_eq!(res.rollbacks as usize, resilient.rollback_trace().len());
        // Rolled-back work is accounted and the makespan pays for it.
        assert!(res.wasted_work >= Seconds::ZERO);
        assert!(rep.makespan > baseline.makespan);
    }

    #[test]
    fn rollback_budget_falls_back_to_fail_and_poison() {
        let mut rt = resilient_rt(
            3,
            Policy::Performance,
            resilient_config(5.0).with_max_rollbacks(4),
        );
        // Every device always faults: dual replication can never agree,
        // so every rollback replays the same doomed task.
        for i in 0..3 {
            rt.set_fault_prob(i, 1.0);
        }
        let ids = heavy_chain(&mut rt, 3, Criticality::High);
        let rep = rt.run().unwrap();
        assert_eq!(
            rep.resilience.expect("resilience enabled").rollbacks,
            4,
            "budget must bound rollbacks"
        );
        assert_eq!(rep.failed, vec![ids[0]]);
        assert_eq!(rep.placements.len(), 0);
    }

    #[test]
    fn resilient_run_is_deterministic() {
        let run = |seed| {
            let mut rt = resilient_rt(seed, Policy::Weighted(0.5), resilient_config(5.0));
            rt.set_fault_prob(1, 0.7);
            rt.set_max_retries(1);
            heavy_chain(&mut rt, 15, Criticality::High);
            let rep = rt.run().unwrap();
            (rep, rt.rollback_trace().to_vec())
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn invalid_mtbf_is_an_error_not_a_panic() {
        let mut rt = resilient_rt(
            1,
            Policy::Performance,
            crate::resilience::ResilienceConfig::new(Seconds(-5.0)),
        );
        chain(&mut rt, 2, Criticality::Normal);
        assert!(matches!(rt.run(), Err(RuntimeError::Resilience(_))));
    }

    #[test]
    fn checkpoint_chain_survives_a_second_run() {
        let mut rt = resilient_rt(1, Policy::Performance, resilient_config(5.0));
        heavy_chain(&mut rt, 30, Criticality::Normal);
        let first = rt.run().unwrap().resilience.expect("resilience enabled");
        assert!(first.checkpoints > 0);
        heavy_chain(&mut rt, 30, Criticality::Normal);
        let second = rt.run().unwrap().resilience.expect("resilience enabled");
        assert!(
            second.checkpoints > first.checkpoints,
            "a later run must keep checkpointing: {first:?} then {second:?}"
        );
    }

    mod security {
        use super::*;
        use crate::resilience::ResilienceConfig;
        use crate::security::SecurityConfig;
        use legato_core::requirements::SecurityLevel;
        use legato_core::units::Bytes;
        use legato_hw::device::TeeCapability;
        use std::collections::HashMap;

        /// xeon (TEE, hw crypto) + gtx1080 (no TEE) + arm64 (TEE, sw
        /// crypto) — the same mix the module tests use.
        fn specs() -> Vec<DeviceSpec> {
            vec![
                DeviceSpec::xeon_x86(),
                DeviceSpec::gtx1080(),
                DeviceSpec::arm64(),
            ]
        }

        fn sizes() -> HashMap<RegionId, Bytes> {
            (0..32u64).map(|r| (RegionId(r), Bytes::mib(32))).collect()
        }

        fn secure_rt(seed: u64) -> Runtime {
            crate::config::EngineConfig::new()
                .with_devices(specs())
                .with_policy(Policy::Performance)
                .with_seed(seed)
                .with_security(SecurityConfig::new().with_region_sizes(sizes()))
                .build()
                .expect("valid engine config")
        }

        fn submit_leveled(rt: &mut Runtime, region: u64, level: SecurityLevel, kind: TaskKind) {
            rt.submit(
                TaskDescriptor::named("sec")
                    .with_kind(kind)
                    .with_work(Work::flops(66e9))
                    .with_requirements(Requirements::new().with_security(level)),
                [(region, AccessMode::InOut)],
            );
        }

        #[test]
        fn enclave_tasks_never_land_on_non_tee_devices() {
            let mut rt = secure_rt(1);
            // Inference work: the GPU would win every placement if
            // confidentiality did not restrict it.
            for i in 0..12u64 {
                submit_leveled(&mut rt, i, SecurityLevel::Enclave, TaskKind::Inference);
            }
            let rep = rt.run().expect("devices present");
            assert_eq!(rep.placements.len(), 12);
            let tee: Vec<usize> = rt
                .devices()
                .iter()
                .enumerate()
                .filter(|(_, d)| d.spec.tee.has_enclave())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tee, vec![0, 2]);
            for p in &rep.placements {
                for &d in &p.devices {
                    assert!(
                        tee.contains(&d),
                        "enclave task {} placed on non-TEE device {d}",
                        p.task
                    );
                }
            }
            let sec = rep.security.expect("confidential tasks ran");
            assert_eq!(sec.enclave_tasks, 12);
            assert!(sec.enclave_time > Seconds::ZERO);
        }

        #[test]
        fn no_tee_device_is_a_hard_error() {
            let mut rt = Runtime::new(
                vec![DeviceSpec::gtx1080(), DeviceSpec::fpga_kintex()],
                Policy::Performance,
                1,
            );
            submit_leveled(&mut rt, 0, SecurityLevel::Enclave, TaskKind::Inference);
            assert!(matches!(rt.run(), Err(RuntimeError::NoSecurePlacement(_))));
            // The unplaceable task was failed, not lost: a follow-up run
            // drains cleanly and reports it.
            let rep = rt.run().expect("graph stays consistent after the error");
            assert_eq!(rep.failed.len(), 1);
            assert!(rep.placements.is_empty());
        }

        #[test]
        fn sweep_refuses_confidential_workloads() {
            let mut rt = secure_rt(1);
            submit_leveled(&mut rt, 0, SecurityLevel::Confidential, TaskKind::Compute);
            assert!(
                matches!(rt.run_sweep(), Err(RuntimeError::Security(_))),
                "the security-unaware sweep must refuse, not silently degrade"
            );
        }

        #[test]
        fn attestation_charged_once_per_enclave_device_pair() {
            let mut rt = secure_rt(3);
            // 8 instances of the same task type on one region → a serial
            // chain on the TEE devices.
            for _ in 0..8 {
                submit_leveled(&mut rt, 0, SecurityLevel::Enclave, TaskKind::Compute);
            }
            let rep = rt.run().expect("devices present");
            assert_eq!(rep.placements.len(), 8);
            // One code image, at most two TEE devices: the quote cache
            // bounds attestations by the (enclave, device) pairs touched,
            // not by the 8 executions.
            let attestations = rep.security.expect("confidential tasks ran").attestations;
            assert!(
                (1..=2).contains(&attestations),
                "attestations {attestations}"
            );
        }

        #[test]
        fn sealed_region_crossing_devices_pays_seal_costs() {
            let mut rt = secure_rt(5);
            // A confidential producer (lands on a TEE CPU) feeding a
            // GPU-favoured public consumer: the region must cross.
            rt.submit(
                TaskDescriptor::named("producer")
                    .with_kind(TaskKind::Compute)
                    .with_work(Work::flops(1e9))
                    .with_requirements(Requirements::new().with_security(SecurityLevel::Enclave)),
                [(0u64, AccessMode::Out)],
            );
            rt.submit(
                TaskDescriptor::named("consumer")
                    .with_kind(TaskKind::Inference)
                    .with_work(Work::flops(66e9)),
                [(0u64, AccessMode::In), (1u64, AccessMode::Out)],
            );
            let rep = rt.run().expect("devices present");
            assert_eq!(rep.placements.len(), 2);
            let producer_dev = rep.placements[0].devices[0];
            let consumer_dev = rep.placements[1].devices[0];
            assert_ne!(producer_dev, consumer_dev, "the region must cross");
            let sec = rep.security.expect("confidential tasks ran");
            assert_eq!(sec.sealed_bytes, Bytes::mib(32));
            assert!(sec.seal_time > Seconds::ZERO);
        }

        #[test]
        fn all_public_run_keeps_security_stats_zero() {
            let mut rt = secure_rt(7);
            for i in 0..6u64 {
                submit_leveled(&mut rt, i, SecurityLevel::Public, TaskKind::Compute);
            }
            let rep = rt.run().expect("devices present");
            assert!(
                rep.security.is_none(),
                "pay-for-what-you-use: an all-public run reports no security stats"
            );
            assert!(rep.is_correct());
        }

        #[test]
        fn confidential_checkpoints_route_through_seal() {
            let run = |confidential: bool| {
                let mut rt = crate::config::EngineConfig::new()
                    .with_devices(specs())
                    .with_policy(Policy::Performance)
                    .with_seed(9)
                    .with_security(SecurityConfig::new().with_region_sizes(sizes()))
                    .with_resilience(ResilienceConfig::new(Seconds(5.0)).with_region_sizes(sizes()))
                    .build()
                    .expect("valid engine config");
                let level = if confidential {
                    SecurityLevel::Confidential
                } else {
                    SecurityLevel::Public
                };
                for _ in 0..30 {
                    rt.submit(
                        TaskDescriptor::named("t")
                            .with_work(Work::flops(2e12))
                            .with_requirements(Requirements::new().with_security(level)),
                        [(0u64, AccessMode::InOut)],
                    );
                }
                rt.run().expect("devices present")
            };
            let plain = run(false);
            let sealed = run(true);
            assert!(plain.resilience.expect("resilience enabled").checkpoints > 0);
            assert!(sealed.resilience.expect("resilience enabled").checkpoints > 0);
            // Checkpoints of confidential data pay sealing on top of the
            // FTI write cost; public data pays nothing (and an all-public
            // run reports no security stats at all).
            assert!(plain.security.is_none());
            let sec = sealed.security.expect("confidential tasks ran");
            assert!(sec.seal_time > Seconds::ZERO, "sealed ckpt stats: {sec:?}");
            assert!(sec.sealed_bytes > Bytes::ZERO);
            assert!(sealed.makespan >= plain.makespan);
        }

        #[test]
        fn hardware_crypto_beats_software_crypto_end_to_end() {
            let run = |tee: TeeCapability| {
                let mut rt = crate::config::EngineConfig::new()
                    .with_devices(vec![
                        DeviceSpec::xeon_x86().with_tee(tee),
                        DeviceSpec::gtx1080(),
                    ])
                    .with_policy(Policy::Performance)
                    .with_seed(11)
                    .with_security(SecurityConfig::new().with_region_sizes(sizes()))
                    .build()
                    .expect("valid engine config");
                for i in 0..8u64 {
                    submit_leveled(&mut rt, i, SecurityLevel::Enclave, TaskKind::Compute);
                }
                rt.run().expect("devices present").makespan
            };
            let sw = run(TeeCapability::software());
            let hw = run(TeeCapability::hardware_assisted());
            assert!(
                hw < sw,
                "hardware crypto must lower the makespan: {hw} vs {sw}"
            );
        }

        #[test]
        fn secure_runs_are_deterministic() {
            let run = |seed| {
                let mut rt = secure_rt(seed);
                rt.set_fault_prob(0, 0.3);
                for i in 0..10u64 {
                    let level = match i % 3 {
                        0 => SecurityLevel::Public,
                        1 => SecurityLevel::Confidential,
                        _ => SecurityLevel::Enclave,
                    };
                    submit_leveled(&mut rt, i % 4, level, TaskKind::Compute);
                }
                rt.run().expect("devices present")
            };
            assert_eq!(run(13), run(13));
        }
    }

    #[test]
    fn engine_matches_sweep_on_a_single_chain() {
        let build = |_| {
            let mut rt = Runtime::new(specs(), Policy::Performance, 9);
            chain(&mut rt, 12, Criticality::Normal);
            rt
        };
        let sweep = build(()).run_sweep().unwrap();
        let event = build(()).run().unwrap();
        assert_eq!(sweep.makespan, event.makespan);
        assert_eq!(sweep.placements, event.placements);
    }
}
