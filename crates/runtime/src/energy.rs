//! The low-energy pillar wired into the engine: operating-point
//! selection and Pareto scheduling objectives.
//!
//! "Low-Energy" is the first word of the paper's title, and this module
//! makes it a first-class *scheduling dimension*, the way
//! [`security`](crate::security) did for confidentiality:
//!
//! * every [`DeviceSpec`](legato_hw::device::DeviceSpec) carries a ladder
//!   of voltage/frequency [`OperatingPoint`](legato_hw::device::OperatingPoint)s
//!   (generic DVFS steps by default; FPGA rails derived from the Fig. 5
//!   undervolting model by [`lowvolt::undervolt_ladder`](crate::lowvolt::undervolt_ladder));
//! * an [`EnergyConfig`] selects a rung per device. The effective spec
//!   (derated compute rate, scaled idle/busy draw) is derived once at
//!   [`EngineConfig::build`](crate::config::EngineConfig::build) time, so
//!   every scheduler [`Estimate`](crate::sched::Estimate), every
//!   committed execution and every energy-meter sample is
//!   operating-point-aware with zero hot-path cost;
//! * an optional [`EnergyObjective`] turns placement into a Pareto
//!   decision: minimize energy subject to a makespan bound, or minimize
//!   makespan subject to a power cap;
//! * an aggressive rung's fault probability feeds two places at once:
//!   the engine's per-device silent-fault draws, and the *effective
//!   MTBF* the resilience layer plans Young checkpoint intervals
//!   against — undervolting and checkpointing are co-optimized, not
//!   configured apart.
//!
//! Pay-for-what-you-use holds: a runtime built without an
//! [`EnergyConfig`] runs bit-identically to the pre-energy engine
//! (proptest-pinned), and [`RunReport::energy`](crate::runtime::RunReport::energy)
//! stays `None`.

use legato_core::units::{Joule, Seconds, Watt};
use serde::{Deserialize, Serialize};

/// Pareto scheduling objective the energy layer can impose on placement.
///
/// When set, the objective *replaces* the configured
/// [`Policy`](crate::scheduler::Policy)'s scoring for device selection
/// (the policy still drives everything else, e.g. resilience interval
/// planning estimates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnergyObjective {
    /// Among candidates predicted to finish by the bound, pick the
    /// cheapest in energy; when no candidate meets the bound, fall back
    /// to the fastest one and count a bound relaxation.
    MinEnergyWithinMakespan(Seconds),
    /// Among candidates whose busy draw respects the cap, pick the
    /// earliest finisher; when every candidate exceeds the cap, fall
    /// back to the lowest-power one and count a cap relaxation.
    MinMakespanUnderPowerCap(Watt),
}

/// Configuration of the energy layer: which operating-point rung each
/// device runs at, and an optional Pareto objective.
///
/// ```
/// use legato_core::units::Seconds;
/// use legato_runtime::EnergyConfig;
///
/// let cfg = EnergyConfig::new()
///     .with_uniform_step(1)            // every device one rung down
///     .with_device_point(2, 0)         // …except device 2, kept nominal
///     .with_makespan_bound(Seconds(3.0));
/// # let _ = cfg;
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[must_use = "builder-style configs do nothing unless passed to EngineConfig"]
pub struct EnergyConfig {
    /// Ladder rung applied to every device without an explicit override,
    /// clamped to each device's ladder length (devices with short
    /// ladders run at their deepest rung).
    pub uniform_step: usize,
    /// Per-device overrides `(device index, ladder rung)`. Unlike the
    /// uniform step, an override index off the device's ladder is an
    /// error at build time, not a clamp.
    pub device_points: Vec<(usize, usize)>,
    /// Optional Pareto placement objective.
    pub objective: Option<EnergyObjective>,
}

impl EnergyConfig {
    /// Energy accounting at nominal operating points, no objective.
    pub fn new() -> Self {
        EnergyConfig::default()
    }

    /// Run every device `step` rungs down its ladder (clamped per
    /// device).
    pub fn with_uniform_step(mut self, step: usize) -> Self {
        self.uniform_step = step;
        self
    }

    /// Pin `device` to ladder rung `point` (overrides the uniform step;
    /// validated against the device's ladder at build time).
    pub fn with_device_point(mut self, device: usize, point: usize) -> Self {
        self.device_points.push((device, point));
        self
    }

    /// Schedule for minimum energy subject to the given makespan bound.
    pub fn with_makespan_bound(mut self, bound: Seconds) -> Self {
        self.objective = Some(EnergyObjective::MinEnergyWithinMakespan(bound));
        self
    }

    /// Schedule for minimum makespan subject to the given per-device
    /// busy-power cap.
    pub fn with_power_cap(mut self, cap: Watt) -> Self {
        self.objective = Some(EnergyObjective::MinMakespanUnderPowerCap(cap));
        self
    }

    /// The ladder rung `device` runs at, given its ladder length:
    /// the explicit override if one exists (last one wins), else the
    /// clamped uniform step.
    #[must_use]
    pub fn point_for(&self, device: usize, ladder_len: usize) -> usize {
        self.device_points
            .iter()
            .rev()
            .find(|(d, _)| *d == device)
            .map_or_else(
                || self.uniform_step.min(ladder_len.saturating_sub(1)),
                |&(_, p)| p,
            )
    }
}

/// Energy counters of one run, reported as
/// [`RunReport::energy`](crate::runtime::RunReport::energy) whenever the
/// runtime was built with an [`EnergyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[must_use = "stats are counters for the caller to inspect; dropping them unread is a bug"]
pub struct EnergyStats {
    /// Joules spent executing tasks (busy power over execution time,
    /// from the per-device [`EnergyMeter`](legato_hw::power::EnergyMeter)s).
    pub busy_energy: Joule,
    /// Joules of idle draw over the makespan (per device: idle power ×
    /// time not spent executing).
    pub idle_energy: Joule,
    /// `busy_energy + idle_energy`.
    pub total_energy: Joule,
    /// Whole-system average power over the run (`total_energy /
    /// makespan`; zero for an empty run).
    pub average_power: Watt,
    /// Placements where no candidate met the makespan bound and the
    /// engine fell back to the fastest device.
    pub bound_relaxations: u64,
    /// Placements where no candidate respected the power cap and the
    /// engine fell back to the lowest-power device.
    pub cap_relaxations: u64,
}

/// Engine-side state of the energy layer. Built by
/// [`EngineConfig::build`](crate::config::EngineConfig::build); inactive
/// (and cost-free) on runtimes constructed without an [`EnergyConfig`].
#[derive(Debug, Clone, Default)]
pub(crate) struct EnergyState {
    /// Whether an [`EnergyConfig`] was supplied.
    pub active: bool,
    /// The Pareto objective, if any.
    pub objective: Option<EnergyObjective>,
    /// Per-device silent-fault probability induced by the selected
    /// operating points (zero at fault-free rungs). Feeds the effective
    /// MTBF in [`resilience::plan_interval`](crate::resilience::plan_interval);
    /// empty when the layer is inactive.
    pub op_fault_probs: Vec<f64>,
    /// Placements that had to relax the makespan bound.
    pub bound_relaxations: u64,
    /// Placements that had to relax the power cap.
    pub cap_relaxations: u64,
}

impl EnergyState {
    /// Assemble the report-facing stats from the run's energy totals.
    pub(crate) fn stats(
        &self,
        busy_energy: Joule,
        idle_energy: Joule,
        makespan: Seconds,
    ) -> EnergyStats {
        let total_energy = busy_energy + idle_energy;
        EnergyStats {
            busy_energy,
            idle_energy,
            total_energy,
            average_power: if makespan.0 > 0.0 {
                total_energy / makespan
            } else {
                Watt(0.0)
            },
            bound_relaxations: self.bound_relaxations,
            cap_relaxations: self.cap_relaxations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_for_prefers_last_override_then_clamped_step() {
        let cfg = EnergyConfig::new()
            .with_uniform_step(2)
            .with_device_point(1, 0)
            .with_device_point(1, 1);
        assert_eq!(cfg.point_for(0, 3), 2);
        assert_eq!(cfg.point_for(0, 2), 1, "uniform step clamps to ladder");
        assert_eq!(cfg.point_for(1, 3), 1, "last override wins");
        assert_eq!(cfg.point_for(5, 1), 0, "single-rung ladder stays nominal");
    }

    #[test]
    fn builders_set_the_objective() {
        let bound = EnergyConfig::new().with_makespan_bound(Seconds(2.0));
        assert_eq!(
            bound.objective,
            Some(EnergyObjective::MinEnergyWithinMakespan(Seconds(2.0)))
        );
        let cap = EnergyConfig::new().with_power_cap(Watt(50.0));
        assert_eq!(
            cap.objective,
            Some(EnergyObjective::MinMakespanUnderPowerCap(Watt(50.0)))
        );
    }

    #[test]
    fn stats_average_power_guards_empty_runs() {
        let state = EnergyState {
            active: true,
            ..EnergyState::default()
        };
        let s = state.stats(Joule(6.0), Joule(2.0), Seconds(4.0));
        assert_eq!(s.total_energy, Joule(8.0));
        assert_eq!(s.average_power, Watt(2.0));
        let empty = state.stats(Joule(0.0), Joule(0.0), Seconds(0.0));
        assert_eq!(empty.average_power, Watt(0.0));
    }
}
