//! Static task-graph verification — race, information-flow, feasibility
//! and checkpoint diagnostics *before* a single event fires.
//!
//! The pillars only help if the submitted graph is actually safe to run:
//! without this module, the engine discovers structural races (possible
//! through [`TaskGraph::add_task_with_deps`]), confidentiality leaks and
//! unsatisfiable placements *dynamically* — or not at all. A
//! [`GraphLint`] pass runs over a [`TaskGraph`] plus the runtime's
//! pillar configuration and emits an [`AnalysisReport`] of structured
//! [`Diagnostic`]s; wired in through
//! [`EngineConfig::with_analysis`](crate::config::EngineConfig::with_analysis),
//! errors refuse the run ([`RuntimeError::AnalysisFailed`]) before any
//! event dispatches, while warn-only mode attaches the report to
//! [`RunReport`](crate::runtime::RunReport).
//!
//! Four lints ship by default:
//!
//! * **region race** ([`LintId::RegionRace`]) — conflicting accesses
//!   (write/write or write/read) to one region between tasks with no
//!   happens-before path. Ordering is proven in two phases: direct
//!   dependence edges first (free on inference-built graphs, where every
//!   conflict has one), then a bitset transitive closure
//!   ([`legato_core::reach::Reachability`]) over only the unresolved
//!   tasks — `O(E · suspects / 64)`, zero when there are none.
//! * **confidential flow** ([`LintId::ConfidentialFlow`]) —
//!   [`SecurityLevel`] as a lattice (public ⊑ sealed-io ⊑ enclave-only):
//!   region taints propagate along the dataflow, and a reader below the
//!   taint of what it reads is flagged with the full writer chain as
//!   evidence. Enclave-only taint reaching a lower reader is an error;
//!   sealed-io taint reaching a public reader is a warning (the data is
//!   sealed at rest — the engine's seal-on-cross-device contract makes
//!   the handoff priced, but it is almost certainly a graph bug).
//! * **placement feasibility** ([`LintId::PlacementFeasibility`]) —
//!   enclave-only tasks against the TEE-capable fleet (predicting
//!   [`RuntimeError::NoSecurePlacement`] at build time), per-task memory
//!   footprint against every eligible device's capacity, replica demand
//!   against the TEE pool, and Pareto objectives whose bound or cap is
//!   infeasible on the specs the engine will actually schedule against
//!   (predicting bound/cap relaxations).
//! * **checkpoint closure** ([`LintId::CheckpointClosure`]) — a
//!   checkpoint-marked task depending on an unmarked one can never be
//!   part of a dependence-closed checkpoint frontier
//!   ([`TaskGraph::rollback`] rejects such frontiers at restore time);
//!   partially declared region sizes that silently price live regions at
//!   zero bytes are warned about.
//!
//! A malformed edge set (dependence cycle) short-circuits every lint
//! into a single [`LintId::GraphCycle`] error naming the cycle path.
//!
//! [`SecurityLevel`]: legato_core::requirements::SecurityLevel
//! [`TaskGraph`]: legato_core::graph::TaskGraph
//! [`TaskGraph::add_task_with_deps`]: legato_core::graph::TaskGraph::add_task_with_deps
//! [`TaskGraph::rollback`]: legato_core::graph::TaskGraph::rollback
//! [`RuntimeError::AnalysisFailed`]: crate::error::RuntimeError::AnalysisFailed
//! [`RuntimeError::NoSecurePlacement`]: crate::error::RuntimeError::NoSecurePlacement

use std::collections::HashMap;
use std::fmt;

use legato_core::graph::TaskGraph;
use legato_core::reach::{has_direct_edge, Reachability};
use legato_core::requirements::SecurityLevel;
use legato_core::task::{RegionId, TaskId};
use legato_hw::device::Device;
use serde::{Deserialize, Serialize};

use crate::energy::EnergyObjective;
use crate::resilience::ResilienceConfig;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but executable; attached to the report, never refuses
    /// a run.
    Warn,
    /// The run would be nondeterministic, leak confidential data, or
    /// fail at placement/restore time; refuses the run in
    /// [`AnalysisMode::Enforce`].
    Error,
}

/// Which lint produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintId {
    /// Unordered conflicting region accesses.
    RegionRace,
    /// Confidentiality-lattice violations along the dataflow.
    ConfidentialFlow,
    /// Placements the device fleet cannot satisfy.
    PlacementFeasibility,
    /// Checkpoint frontiers that can never be dependence-closed.
    CheckpointClosure,
    /// The dependence edge set contains a cycle (not a lint pass — a
    /// structural precondition every pass needs; reported when
    /// [`TaskGraph::try_topological_order`] fails).
    ///
    /// [`TaskGraph::try_topological_order`]: legato_core::graph::TaskGraph::try_topological_order
    GraphCycle,
}

impl LintId {
    /// Stable kebab-case name, used in rendered diagnostics and report
    /// files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintId::RegionRace => "region-race",
            LintId::ConfidentialFlow => "confidential-flow",
            LintId::PlacementFeasibility => "placement-feasibility",
            LintId::CheckpointClosure => "checkpoint-closure",
            LintId::GraphCycle => "graph-cycle",
        }
    }

    /// The four default lint passes, in the order they run.
    #[must_use]
    pub fn default_set() -> [LintId; 4] {
        [
            LintId::RegionRace,
            LintId::ConfidentialFlow,
            LintId::PlacementFeasibility,
            LintId::CheckpointClosure,
        ]
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The lint that fired.
    pub lint: LintId,
    /// Error or warning.
    pub severity: Severity,
    /// The witness tasks (e.g. the two unordered writers, the
    /// confidential producer and the leaking reader).
    pub tasks: Vec<TaskId>,
    /// The witness regions, when the finding is about data.
    pub regions: Vec<RegionId>,
    /// Evidence: a happens-before / dataflow path or a cycle, task by
    /// task. Empty when the evidence is the *absence* of a path (a
    /// race counterexample) or fleet-level (feasibility).
    pub path: Vec<TaskId>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warn => "warning",
        };
        write!(f, "{sev}[{}]: {}", self.lint.name(), self.message)?;
        if !self.path.is_empty() {
            write!(f, " (path ")?;
            for (i, t) in self.path.iter().enumerate() {
                if i > 0 {
                    write!(f, " -> ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The result of one analysis pass over a graph.
#[must_use = "an unread analysis report hides the diagnostics it carries"]
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Every finding, in lint order then discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Lints that ran (disabled lints are absent; a graph cycle
    /// short-circuits the list to `[GraphCycle]`).
    pub lints_run: Vec<LintId>,
    /// Tasks in the graph when the analysis ran.
    pub tasks_analyzed: usize,
}

impl AnalysisReport {
    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the graph passed every lint with nothing to report.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks analyzed, {} error(s), {} warning(s)",
            self.tasks_analyzed,
            self.error_count(),
            self.warning_count()
        )?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

/// Whether analysis findings refuse the run or only annotate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AnalysisMode {
    /// Error-severity findings make [`Runtime::run`] /
    /// [`Runtime::step`] return [`RuntimeError::AnalysisFailed`] before
    /// any event is dispatched.
    ///
    /// [`Runtime::run`]: crate::runtime::Runtime::run
    /// [`Runtime::step`]: crate::runtime::Runtime::step
    /// [`RuntimeError::AnalysisFailed`]: crate::error::RuntimeError::AnalysisFailed
    #[default]
    Enforce,
    /// The run proceeds regardless; the report is attached to
    /// [`RunReport::analysis`](crate::runtime::RunReport::analysis).
    WarnOnly,
}

/// Configuration of the pre-execution analysis
/// ([`EngineConfig::with_analysis`](crate::config::EngineConfig::with_analysis)).
#[must_use = "builder-style configs do nothing unless passed to EngineConfig"]
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Enforce (refuse on errors) or warn-only.
    pub mode: AnalysisMode,
    /// Lints excluded from the run ([`LintId::GraphCycle`] cannot be
    /// disabled — it is a structural precondition, not a pass).
    pub disabled: Vec<LintId>,
}

impl AnalysisConfig {
    /// All four lints, enforcing: errors refuse the run.
    pub fn new() -> Self {
        AnalysisConfig::default()
    }

    /// Report findings but never refuse the run.
    pub fn warn_only(mut self) -> Self {
        self.mode = AnalysisMode::WarnOnly;
        self
    }

    /// Disable one lint pass.
    pub fn without_lint(mut self, lint: LintId) -> Self {
        if !self.disabled.contains(&lint) {
            self.disabled.push(lint);
        }
        self
    }

    /// Whether a lint pass is enabled.
    #[must_use]
    pub fn lint_enabled(&self, lint: LintId) -> bool {
        !self.disabled.contains(&lint)
    }
}

/// Everything a lint pass may inspect: the graph and the runtime's
/// pillar configuration, borrowed for the duration of the pass.
pub struct AnalysisContext<'a> {
    /// The dataflow graph under analysis.
    pub graph: &'a TaskGraph,
    /// The device fleet, with the specs the engine will actually
    /// schedule against (operating-point derating already applied).
    pub devices: &'a [Device],
    /// The active Pareto objective, if any.
    pub objective: Option<EnergyObjective>,
    /// The checkpoint/restart configuration, when resilience mode is on.
    pub resilience: Option<&'a ResilienceConfig>,
}

/// One pluggable lint pass. The four built-in passes implement this;
/// custom passes can be run through [`run_with`].
pub trait GraphLint {
    /// Identity of the pass (its diagnostics should carry the same id).
    fn id(&self) -> LintId;
    /// Inspect the context and append findings.
    fn check(&self, cx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>);
}

/// Run the configured default lints over a context.
///
/// A dependence cycle short-circuits: the report carries a single
/// [`LintId::GraphCycle`] error naming the cycle path and no lint pass
/// runs (none of them is meaningful on a non-DAG).
pub fn run_lints(cx: &AnalysisContext<'_>, config: &AnalysisConfig) -> AnalysisReport {
    let passes: Vec<Box<dyn GraphLint>> = LintId::default_set()
        .into_iter()
        .filter(|l| config.lint_enabled(*l))
        .map(|l| -> Box<dyn GraphLint> {
            match l {
                LintId::RegionRace => Box::new(RegionRaceLint),
                LintId::ConfidentialFlow => Box::new(ConfidentialFlowLint),
                LintId::PlacementFeasibility => Box::new(PlacementFeasibilityLint),
                LintId::CheckpointClosure | LintId::GraphCycle => Box::new(CheckpointClosureLint),
            }
        })
        .collect();
    run_with(cx, &passes)
}

/// Run an arbitrary set of lint passes over a context (the extension
/// point for custom passes). The cycle precondition is still checked
/// first.
pub fn run_with(cx: &AnalysisContext<'_>, passes: &[Box<dyn GraphLint>]) -> AnalysisReport {
    let mut report = AnalysisReport {
        tasks_analyzed: cx.graph.len(),
        ..AnalysisReport::default()
    };
    if let Err(cycle) = cx.graph.try_topological_order() {
        report.lints_run.push(LintId::GraphCycle);
        report.diagnostics.push(Diagnostic {
            lint: LintId::GraphCycle,
            severity: Severity::Error,
            tasks: cycle.clone(),
            regions: Vec::new(),
            message: format!(
                "dependence edges form a cycle through {} task(s) starting at {}; \
                 no execution order exists",
                cycle.len(),
                cycle[0]
            ),
            path: cycle,
        });
        return report;
    }
    for pass in passes {
        report.lints_run.push(pass.id());
        pass.check(cx, &mut report.diagnostics);
    }
    report
}

/// Per-region accessor scan state shared by the race lint.
struct RegionWindow {
    last_writer: Option<TaskId>,
    readers: Vec<TaskId>,
}

/// The region race detector.
///
/// Task ids ascend along every dependence edge, so id order is a
/// topological order and any happens-before path between two
/// conflicting accessors can only run from the smaller id to the
/// larger. Scanning each region's accessors in id order therefore
/// reduces race freedom to ordering each access against the *window* of
/// the last writer and the readers since it — `O(accesses)` pairs in
/// total, each resolved by a direct-edge probe first and the bitset
/// closure only for the leftovers.
struct RegionRaceLint;

impl GraphLint for RegionRaceLint {
    fn id(&self) -> LintId {
        LintId::RegionRace
    }

    fn check(&self, cx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = cx.graph;
        // (earlier, later, region, later-writes): ordering obligations.
        let mut pairs: Vec<(TaskId, TaskId, RegionId, bool)> = Vec::new();
        let mut windows: HashMap<RegionId, RegionWindow> = HashMap::new();
        for i in 0..g.len() {
            let t = TaskId(i as u64);
            for &(region, mode) in g.accesses(t).expect("id in range") {
                let w = windows.entry(region).or_insert(RegionWindow {
                    last_writer: None,
                    readers: Vec::new(),
                });
                if mode.writes() {
                    if let Some(prev) = w.last_writer {
                        pairs.push((prev, t, region, true));
                    }
                    // A write also conflicts with every read since the
                    // last write (WAR) — unless this task is itself one
                    // of those readers (InOut reads and writes).
                    for &r in w.readers.iter().filter(|&&r| r != t) {
                        pairs.push((r, t, region, true));
                    }
                    w.last_writer = Some(t);
                    w.readers.clear();
                }
                if mode.reads() && !mode.writes() {
                    if let Some(prev) = w.last_writer {
                        pairs.push((prev, t, region, false));
                    }
                    w.readers.push(t);
                }
            }
        }
        // Phase 1: direct dependence edges witness the ordering for free
        // (every pair on an inference-built graph resolves here).
        pairs.retain(|&(a, b, _, _)| !has_direct_edge(g, a, b));
        if pairs.is_empty() {
            return;
        }
        // Phase 2: transitive closure over only the unresolved earlier
        // tasks.
        let sources: Vec<TaskId> = pairs.iter().map(|&(a, _, _, _)| a).collect();
        let reach = Reachability::over(g, &sources).expect("cycle precondition checked by runner");
        for (a, b, region, later_writes) in pairs {
            if reach.reaches(a, b) {
                continue;
            }
            let verb = if later_writes {
                "write the same region"
            } else {
                "write and read the same region"
            };
            out.push(Diagnostic {
                lint: LintId::RegionRace,
                severity: Severity::Error,
                tasks: vec![a, b],
                regions: vec![region],
                path: Vec::new(),
                message: format!(
                    "{a} and {b} {verb} {region:?} with no happens-before path between \
                     them; their execution order (and the region's final value) is \
                     nondeterministic"
                ),
            });
        }
    }
}

/// Taint of one region: the confidentiality level its current contents
/// carry and a link into the provenance chain that produced them.
#[derive(Clone, Copy)]
struct Taint {
    level: SecurityLevel,
    prov: usize,
}

/// The confidentiality flow check.
///
/// Walks tasks in dataflow (id) order, propagating each region's taint:
/// a task's *effective* level is the join of its own declared level and
/// the taints of everything it reads, and every region it writes takes
/// that effective level. A reader whose declared level sits strictly
/// below the taint of a region it reads is flagged, with the writer
/// chain from the original confidential producer as the evidence path —
/// the static mirror of the engine's seal-on-cross-device contract.
struct ConfidentialFlowLint;

impl GraphLint for ConfidentialFlowLint {
    fn id(&self) -> LintId {
        LintId::ConfidentialFlow
    }

    fn check(&self, cx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = cx.graph;
        // Provenance arena: (task, parent entry) — each tainted write
        // appends one node, so evidence paths reconstruct in O(path).
        let mut prov: Vec<(TaskId, Option<usize>)> = Vec::new();
        let mut taints: HashMap<RegionId, Taint> = HashMap::new();
        for i in 0..g.len() {
            let t = TaskId(i as u64);
            let own = g.descriptor(t).expect("id in range").requirements.security;
            // Join of the input taints (and the strongest one's
            // provenance, for the evidence chain).
            let mut in_level = SecurityLevel::Public;
            let mut in_prov = None;
            for &(region, mode) in g.accesses(t).expect("id in range") {
                let Some(&taint) = taints.get(&region) else {
                    continue;
                };
                if mode.reads() {
                    if taint.level > own {
                        let mut path: Vec<TaskId> = Vec::new();
                        let mut at = Some(taint.prov);
                        while let Some(p) = at {
                            path.push(prov[p].0);
                            at = prov[p].1;
                        }
                        path.reverse();
                        let origin = path[0];
                        path.push(t);
                        let (severity, consequence) = if taint.level == SecurityLevel::Enclave {
                            (
                                Severity::Error,
                                "enclave-only data must not flow below its level",
                            )
                        } else {
                            (
                                Severity::Warn,
                                "the handoff is sealed at rest, so the reader gets \
                                 ciphertext it has no business unsealing",
                            )
                        };
                        out.push(Diagnostic {
                            lint: LintId::ConfidentialFlow,
                            severity,
                            tasks: vec![origin, t],
                            regions: vec![region],
                            message: format!(
                                "{t} ({own:?}) reads {region:?} carrying {:?}-tainted data \
                                 originating at {origin}; {consequence}",
                                taint.level
                            ),
                            path,
                        });
                    }
                    if taint.level > in_level {
                        in_level = taint.level;
                        in_prov = Some(taint.prov);
                    }
                }
            }
            let effective = own.max(in_level);
            if effective == SecurityLevel::Public {
                // Public writes overwrite any stale taint.
                for &(region, mode) in g.accesses(t).expect("id in range") {
                    if mode.writes() {
                        taints.remove(&region);
                    }
                }
                continue;
            }
            let entry = prov.len();
            let parent = if in_level >= own { in_prov } else { None };
            prov.push((t, parent));
            for &(region, mode) in g.accesses(t).expect("id in range") {
                if mode.writes() {
                    taints.insert(
                        region,
                        Taint {
                            level: effective,
                            prov: entry,
                        },
                    );
                }
            }
        }
    }
}

/// The placement feasibility check.
struct PlacementFeasibilityLint;

impl GraphLint for PlacementFeasibilityLint {
    fn id(&self) -> LintId {
        LintId::PlacementFeasibility
    }

    fn check(&self, cx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = cx.graph;
        let tee: Vec<usize> = cx
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.spec.tee.has_enclave())
            .map(|(i, _)| i)
            .collect();
        // Fleet-level facts, hoisted out of the task loop.
        let cap_ok = match cx.objective {
            Some(EnergyObjective::MinMakespanUnderPowerCap(cap)) => {
                cx.devices.iter().any(|d| d.spec.busy_power <= cap)
            }
            _ => true,
        };
        if !cap_ok && !g.is_empty() {
            out.push(Diagnostic {
                lint: LintId::PlacementFeasibility,
                severity: Severity::Warn,
                tasks: Vec::new(),
                regions: Vec::new(),
                path: Vec::new(),
                message: "no device's busy power fits under the configured power cap; \
                          every placement will relax the cap to the lowest-power device"
                    .into(),
            });
        }
        // Enclave-only tasks on a TEE-less fleet: one aggregated error
        // (the fleet is the cause, the tasks are the witnesses).
        let mut stranded: Vec<TaskId> = Vec::new();
        for i in 0..g.len() {
            let t = TaskId(i as u64);
            let d = g.descriptor(t).expect("id in range");
            let req = d.requirements;
            let eligible: &[usize] = if req.security.requires_enclave() {
                &tee
            } else {
                &[]
            };
            if req.security.requires_enclave() {
                if tee.is_empty() {
                    stranded.push(t);
                    continue;
                }
                let replicas = req.criticality.replica_count();
                if replicas > tee.len() {
                    out.push(Diagnostic {
                        lint: LintId::PlacementFeasibility,
                        severity: Severity::Warn,
                        tasks: vec![t],
                        regions: Vec::new(),
                        path: Vec::new(),
                        message: format!(
                            "{t} wants {replicas} replicas but only {} TEE-capable \
                             device(s) exist; its replica set will shrink to the TEE pool",
                            tee.len()
                        ),
                    });
                }
            }
            // Memory footprint vs every eligible device.
            let footprint = d.work.bytes;
            let fits = if req.security.requires_enclave() {
                eligible
                    .iter()
                    .any(|&i| cx.devices[i].spec.mem_capacity >= footprint)
            } else {
                cx.devices.iter().any(|d| d.spec.mem_capacity >= footprint)
            };
            if !fits && !cx.devices.is_empty() {
                out.push(Diagnostic {
                    lint: LintId::PlacementFeasibility,
                    severity: Severity::Error,
                    tasks: vec![t],
                    regions: Vec::new(),
                    path: Vec::new(),
                    message: format!(
                        "{t}'s declared footprint ({footprint}) exceeds the memory \
                         capacity of every {}device",
                        if req.security.requires_enclave() {
                            "TEE-capable "
                        } else {
                            ""
                        }
                    ),
                });
            }
            // Makespan bound vs the fastest device the engine will
            // actually use (specs are already derated to the selected
            // operating point, so this predicts real relaxations).
            if let Some(EnergyObjective::MinEnergyWithinMakespan(bound)) = cx.objective {
                let fastest = cx
                    .devices
                    .iter()
                    .map(|dev| dev.spec.time_for(d.work, d.kind))
                    .fold(f64::INFINITY, |acc, s| acc.min(s.0));
                if fastest.is_finite() && fastest > bound.0 {
                    out.push(Diagnostic {
                        lint: LintId::PlacementFeasibility,
                        severity: Severity::Warn,
                        tasks: vec![t],
                        regions: Vec::new(),
                        path: Vec::new(),
                        message: format!(
                            "{t} needs at least {fastest:.3}s on the fastest device, \
                             over the {bound} makespan bound; the bound will be relaxed"
                        ),
                    });
                }
            }
        }
        if !stranded.is_empty() {
            let n = stranded.len();
            let first = stranded[0];
            out.push(Diagnostic {
                lint: LintId::PlacementFeasibility,
                severity: Severity::Error,
                tasks: stranded,
                regions: Vec::new(),
                path: Vec::new(),
                message: format!(
                    "{n} enclave-only task(s) (first: {first}) but no device offers a \
                     TEE; every one would fail with NoSecurePlacement at dispatch"
                ),
            });
        }
    }
}

/// The checkpoint-closure check (active only with a resilience
/// configuration).
struct CheckpointClosureLint;

impl GraphLint for CheckpointClosureLint {
    fn id(&self) -> LintId {
        LintId::CheckpointClosure
    }

    fn check(&self, cx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(res) = cx.resilience else {
            return;
        };
        let g = cx.graph;
        let marked = |t: TaskId| {
            g.descriptor(t)
                .expect("id in range")
                .requirements
                .checkpointed
        };
        for i in 0..g.len() {
            let t = TaskId(i as u64);
            if !marked(t) {
                continue;
            }
            for &p in g.predecessors(t).expect("id in range") {
                if !marked(p) {
                    out.push(Diagnostic {
                        lint: LintId::CheckpointClosure,
                        severity: Severity::Error,
                        tasks: vec![p, t],
                        regions: Vec::new(),
                        path: vec![p, t],
                        message: format!(
                            "checkpoint-marked {t} depends on unmarked {p}: the declared \
                             checkpoint set is not closed under dependences, so no frontier \
                             containing {t} can ever be checkpointed and restored \
                             (rollback rejects unclosed frontiers)"
                        ),
                    });
                }
            }
        }
        // Partially declared region sizes: regions that can be live at a
        // checkpoint (written by one task, read by a later one) but
        // missing from the declaration are silently priced at zero. An
        // entirely empty map means volume accounting is off by choice —
        // only a *partial* declaration is suspicious.
        if !res.region_sizes.is_empty() {
            let mut written: HashMap<RegionId, TaskId> = HashMap::new();
            let mut undeclared: Vec<RegionId> = Vec::new();
            for i in 0..g.len() {
                let t = TaskId(i as u64);
                for &(region, mode) in g.accesses(t).expect("id in range") {
                    let live_window = mode.reads()
                        && written.get(&region).is_some_and(|&w| w != t)
                        && !res.region_sizes.contains_key(&region)
                        && !undeclared.contains(&region);
                    if live_window {
                        undeclared.push(region);
                    }
                    if mode.writes() {
                        written.insert(region, t);
                    }
                }
            }
            if !undeclared.is_empty() {
                let n = undeclared.len();
                out.push(Diagnostic {
                    lint: LintId::CheckpointClosure,
                    severity: Severity::Warn,
                    tasks: Vec::new(),
                    message: format!(
                        "{n} region(s) (first: {:?}) can be live at a checkpoint but have \
                         no declared size; their checkpoint volume is priced as zero bytes",
                        undeclared[0]
                    ),
                    regions: undeclared,
                    path: Vec::new(),
                });
            }
        }
    }
}

/// Per-runtime analysis state: the configuration plus memoization of the
/// last pass, so streaming submission re-analyzes only when the graph
/// has grown — or the fleet has changed.
#[derive(Debug, Clone)]
pub(crate) struct AnalysisState {
    pub(crate) config: AnalysisConfig,
    /// Graph length at the last pass; a longer graph re-triggers.
    pub(crate) analyzed_len: usize,
    /// Fleet epoch at the last pass (churn bumps the epoch on every
    /// arrival and departure). Lint verdicts — placement feasibility in
    /// particular — are computed against a concrete fleet, so a grown or
    /// shrunk fleet must re-lint before the next dispatch; a memo keyed
    /// on graph length alone would keep serving stale verdicts.
    pub(crate) analyzed_epoch: u64,
    /// The last pass's report (attached to `RunReport`).
    pub(crate) report: Option<AnalysisReport>,
}

impl AnalysisState {
    pub(crate) fn new(config: AnalysisConfig) -> Self {
        AnalysisState {
            config,
            analyzed_len: 0,
            analyzed_epoch: 0,
            report: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legato_core::graph::TaskGraph;
    use legato_core::requirements::{Criticality, Requirements};
    use legato_core::task::{AccessMode, TaskDescriptor, Work};
    use legato_core::units::{Bytes, Seconds, Watt};
    use legato_hw::device::{Device, DeviceId, DeviceSpec};

    fn fleet(specs: Vec<DeviceSpec>) -> Vec<Device> {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| Device::new(DeviceId(i as u64), s))
            .collect()
    }

    fn analyze(graph: &TaskGraph, devices: &[Device]) -> AnalysisReport {
        let cx = AnalysisContext {
            graph,
            devices,
            objective: None,
            resilience: None,
        };
        run_lints(&cx, &AnalysisConfig::new())
    }

    fn desc(name: &'static str) -> TaskDescriptor {
        TaskDescriptor::named(name)
    }

    fn secure(name: &'static str, level: SecurityLevel) -> TaskDescriptor {
        desc(name).with_requirements(Requirements::new().with_security(level))
    }

    fn only(report: &AnalysisReport, lint: LintId) -> Vec<&Diagnostic> {
        report
            .diagnostics
            .iter()
            .filter(|d| d.lint == lint)
            .collect()
    }

    // --- region race ---

    #[test]
    fn race_unordered_writers_are_reported_with_witnesses() {
        let mut g = TaskGraph::new();
        let a = g
            .add_task_with_deps(desc("a"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        let b = g
            .add_task_with_deps(desc("b"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        let races = only(&report, LintId::RegionRace);
        assert_eq!(races.len(), 1, "{report}");
        assert_eq!(races[0].severity, Severity::Error);
        assert_eq!(races[0].tasks, vec![a, b]);
        assert_eq!(races[0].regions, vec![RegionId(0)]);
        assert!(report.has_errors());
    }

    #[test]
    fn race_unordered_writer_against_reader_is_reported() {
        let mut g = TaskGraph::new();
        let a = g
            .add_task_with_deps(desc("w"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        let r = g
            .add_task_with_deps(desc("r"), [(0u64, AccessMode::In)], &[a])
            .unwrap();
        // A second writer ordered against `a` (explicit dep) but not
        // against the reader: a write-after-read race.
        let w2 = g
            .add_task_with_deps(desc("w2"), [(0u64, AccessMode::Out)], &[a])
            .unwrap();
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        let races = only(&report, LintId::RegionRace);
        assert_eq!(races.len(), 1, "{report}");
        assert_eq!(races[0].tasks, vec![r, w2]);
    }

    #[test]
    fn race_inference_built_graph_is_clean() {
        let mut g = TaskGraph::new();
        g.add_task(desc("p"), [(0u64, AccessMode::Out)]);
        g.add_task(desc("c1"), [(0u64, AccessMode::In)]);
        g.add_task(desc("c2"), [(0u64, AccessMode::In)]);
        g.add_task(desc("w"), [(0u64, AccessMode::InOut)]);
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.tasks_analyzed, 4);
        assert_eq!(report.lints_run.len(), 4);
    }

    #[test]
    fn race_transitive_ordering_needs_no_direct_edge() {
        // a writes R0, c writes R0; the only path is a -> b -> c through
        // explicit deps — phase 2 (the closure) must prove it.
        let mut g = TaskGraph::new();
        let a = g
            .add_task_with_deps(desc("a"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        let b = g
            .add_task_with_deps(desc("b"), [(1u64, AccessMode::Out)], &[a])
            .unwrap();
        let _c = g
            .add_task_with_deps(desc("c"), [(0u64, AccessMode::Out)], &[b])
            .unwrap();
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        assert!(only(&report, LintId::RegionRace).is_empty(), "{report}");
    }

    // --- confidential flow ---

    #[test]
    fn flow_enclave_taint_reaching_public_reader_is_an_error() {
        let mut g = TaskGraph::new();
        let w = g.add_task(
            secure("classify", SecurityLevel::Enclave),
            [(0u64, AccessMode::Out)],
        );
        let r = g.add_task(
            secure("log", SecurityLevel::Public),
            [(0u64, AccessMode::In)],
        );
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        let flows = only(&report, LintId::ConfidentialFlow);
        assert_eq!(flows.len(), 1, "{report}");
        assert_eq!(flows[0].severity, Severity::Error);
        assert_eq!(flows[0].tasks, vec![w, r]);
        assert_eq!(flows[0].path, vec![w, r]);
    }

    #[test]
    fn flow_taint_propagates_through_intermediate_writers() {
        // enclave -> confidential relay -> public: the relay reads
        // enclave data (allowed downward? no — Confidential < Enclave,
        // flagged) and re-writes it, so the public reader sees
        // enclave-tainted data with the full chain as evidence.
        let mut g = TaskGraph::new();
        let w = g.add_task(
            secure("produce", SecurityLevel::Enclave),
            [(0u64, AccessMode::Out)],
        );
        let relay = g.add_task(
            secure("relay", SecurityLevel::Confidential),
            [(0u64, AccessMode::In), (1u64, AccessMode::Out)],
        );
        let r = g.add_task(
            secure("sink", SecurityLevel::Public),
            [(1u64, AccessMode::In)],
        );
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        let flows = only(&report, LintId::ConfidentialFlow);
        // Two findings: the relay itself reads above its level, and the
        // sink reads the relayed taint.
        assert_eq!(flows.len(), 2, "{report}");
        let sink = flows
            .iter()
            .find(|d| d.tasks.contains(&r))
            .expect("sink flagged");
        assert_eq!(sink.path, vec![w, relay, r]);
        assert_eq!(sink.tasks, vec![w, r]);
    }

    #[test]
    fn flow_confidential_to_public_is_a_warning_not_an_error() {
        let mut g = TaskGraph::new();
        g.add_task(
            secure("produce", SecurityLevel::Confidential),
            [(0u64, AccessMode::Out)],
        );
        g.add_task(
            secure("sink", SecurityLevel::Public),
            [(0u64, AccessMode::In)],
        );
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        let flows = only(&report, LintId::ConfidentialFlow);
        assert_eq!(flows.len(), 1, "{report}");
        assert_eq!(flows[0].severity, Severity::Warn);
        assert!(!report.has_errors());
    }

    #[test]
    fn flow_level_respecting_graph_is_clean() {
        let mut g = TaskGraph::new();
        g.add_task(
            secure("produce", SecurityLevel::Enclave),
            [(0u64, AccessMode::Out)],
        );
        g.add_task(
            secure("consume", SecurityLevel::Enclave),
            [(0u64, AccessMode::In)],
        );
        // Public work on untainted regions is unaffected.
        g.add_task(
            secure("other", SecurityLevel::Public),
            [(1u64, AccessMode::Out)],
        );
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        assert!(
            only(&report, LintId::ConfidentialFlow).is_empty(),
            "{report}"
        );
    }

    #[test]
    fn flow_public_overwrite_clears_the_taint() {
        let mut g = TaskGraph::new();
        g.add_task(
            secure("produce", SecurityLevel::Enclave),
            [(0u64, AccessMode::Out)],
        );
        // Out (not InOut): overwrites without reading, so no violation
        // and the region is publicly rewritten from here on.
        g.add_task(
            secure("reset", SecurityLevel::Public),
            [(0u64, AccessMode::Out)],
        );
        g.add_task(
            secure("sink", SecurityLevel::Public),
            [(0u64, AccessMode::In)],
        );
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        assert!(
            only(&report, LintId::ConfidentialFlow).is_empty(),
            "{report}"
        );
    }

    // --- placement feasibility ---

    #[test]
    fn feasibility_enclave_tasks_on_tee_less_fleet_is_an_error() {
        let mut g = TaskGraph::new();
        let t = g.add_task(
            secure("sgx", SecurityLevel::Enclave),
            [(0u64, AccessMode::Out)],
        );
        let report = analyze(
            &g,
            &fleet(vec![DeviceSpec::gtx1080(), DeviceSpec::fpga_kintex()]),
        );
        let feas = only(&report, LintId::PlacementFeasibility);
        assert_eq!(feas.len(), 1, "{report}");
        assert_eq!(feas[0].severity, Severity::Error);
        assert_eq!(feas[0].tasks, vec![t]);
        assert!(feas[0].message.contains("NoSecurePlacement"), "{}", feas[0]);
    }

    #[test]
    fn feasibility_enclave_task_with_a_tee_device_is_clean() {
        let mut g = TaskGraph::new();
        g.add_task(
            secure("sgx", SecurityLevel::Enclave),
            [(0u64, AccessMode::Out)],
        );
        let report = analyze(
            &g,
            &fleet(vec![DeviceSpec::gtx1080(), DeviceSpec::xeon_x86()]),
        );
        assert!(
            only(&report, LintId::PlacementFeasibility).is_empty(),
            "{report}"
        );
    }

    #[test]
    fn feasibility_oversized_footprint_is_an_error() {
        let mut g = TaskGraph::new();
        g.add_task(
            desc("huge").with_work(Work::bytes(Bytes::gib(1024))),
            [(0u64, AccessMode::Out)],
        );
        let report = analyze(
            &g,
            &fleet(vec![DeviceSpec::xeon_x86(), DeviceSpec::gtx1080()]),
        );
        let feas = only(&report, LintId::PlacementFeasibility);
        assert_eq!(feas.len(), 1, "{report}");
        assert_eq!(feas[0].severity, Severity::Error);
        assert!(feas[0].message.contains("exceeds"), "{}", feas[0]);
    }

    #[test]
    fn feasibility_footprint_within_capacity_is_clean() {
        let mut g = TaskGraph::new();
        g.add_task(
            desc("fits").with_work(Work::bytes(Bytes::gib(2))),
            [(0u64, AccessMode::Out)],
        );
        let report = analyze(&g, &fleet(vec![DeviceSpec::fpga_kintex()]));
        assert!(
            only(&report, LintId::PlacementFeasibility).is_empty(),
            "{report}"
        );
    }

    #[test]
    fn feasibility_replica_demand_above_tee_pool_warns() {
        let mut g = TaskGraph::new();
        g.add_task(
            desc("critical").with_requirements(
                Requirements::new()
                    .with_security(SecurityLevel::Enclave)
                    .with_criticality(Criticality::Critical),
            ),
            [(0u64, AccessMode::Out)],
        );
        let report = analyze(
            &g,
            &fleet(vec![DeviceSpec::xeon_x86(), DeviceSpec::gtx1080()]),
        );
        let feas = only(&report, LintId::PlacementFeasibility);
        assert_eq!(feas.len(), 1, "{report}");
        assert_eq!(feas[0].severity, Severity::Warn);
        assert!(feas[0].message.contains("replica"), "{}", feas[0]);
    }

    #[test]
    fn feasibility_unreachable_makespan_bound_warns() {
        let mut g = TaskGraph::new();
        g.add_task(
            desc("heavy").with_work(Work::flops(1.0e15)),
            [(0u64, AccessMode::Out)],
        );
        let devices = fleet(vec![DeviceSpec::xeon_x86()]);
        let cx = AnalysisContext {
            graph: &g,
            devices: &devices,
            objective: Some(EnergyObjective::MinEnergyWithinMakespan(Seconds(1.0e-3))),
            resilience: None,
        };
        let report = run_lints(&cx, &AnalysisConfig::new());
        let feas = only(&report, LintId::PlacementFeasibility);
        assert_eq!(feas.len(), 1, "{report}");
        assert_eq!(feas[0].severity, Severity::Warn);
        assert!(feas[0].message.contains("bound"), "{}", feas[0]);
    }

    #[test]
    fn feasibility_unreachable_power_cap_warns_once() {
        let mut g = TaskGraph::new();
        g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        let devices = fleet(vec![DeviceSpec::xeon_x86(), DeviceSpec::gtx1080()]);
        let cx = AnalysisContext {
            graph: &g,
            devices: &devices,
            objective: Some(EnergyObjective::MinMakespanUnderPowerCap(Watt(1.0))),
            resilience: None,
        };
        let report = run_lints(&cx, &AnalysisConfig::new());
        let feas = only(&report, LintId::PlacementFeasibility);
        assert_eq!(
            feas.len(),
            1,
            "one fleet-level warning, not per task: {report}"
        );
        assert!(feas[0].message.contains("power"), "{}", feas[0]);
    }

    // --- checkpoint closure ---

    fn ckpt(name: &'static str, marked: bool) -> TaskDescriptor {
        desc(name).with_requirements(Requirements::new().with_checkpointing(marked))
    }

    #[test]
    fn checkpoint_unmarked_predecessor_is_an_error() {
        let mut g = TaskGraph::new();
        let a = g.add_task(ckpt("raw", false), [(0u64, AccessMode::Out)]);
        let b = g.add_task(ckpt("model", true), [(0u64, AccessMode::In)]);
        let devices = fleet(vec![DeviceSpec::xeon_x86()]);
        let res = crate::resilience::ResilienceConfig::new(Seconds(500.0));
        let cx = AnalysisContext {
            graph: &g,
            devices: &devices,
            objective: None,
            resilience: Some(&res),
        };
        let report = run_lints(&cx, &AnalysisConfig::new());
        let cks = only(&report, LintId::CheckpointClosure);
        assert_eq!(cks.len(), 1, "{report}");
        assert_eq!(cks[0].severity, Severity::Error);
        assert_eq!(cks[0].tasks, vec![a, b]);
    }

    #[test]
    fn checkpoint_closed_set_is_clean_and_lint_is_inert_without_resilience() {
        let mut g = TaskGraph::new();
        g.add_task(ckpt("raw", true), [(0u64, AccessMode::Out)]);
        g.add_task(ckpt("model", true), [(0u64, AccessMode::In)]);
        let devices = fleet(vec![DeviceSpec::xeon_x86()]);
        let res = crate::resilience::ResilienceConfig::new(Seconds(500.0));
        let cx = AnalysisContext {
            graph: &g,
            devices: &devices,
            objective: None,
            resilience: Some(&res),
        };
        let report = run_lints(&cx, &AnalysisConfig::new());
        assert!(
            only(&report, LintId::CheckpointClosure).is_empty(),
            "{report}"
        );

        // The same violation without a resilience config is not a
        // finding: nothing will ever checkpoint.
        let mut g2 = TaskGraph::new();
        g2.add_task(ckpt("raw", false), [(0u64, AccessMode::Out)]);
        g2.add_task(ckpt("model", true), [(0u64, AccessMode::In)]);
        let report = analyze(&g2, &devices);
        assert!(
            only(&report, LintId::CheckpointClosure).is_empty(),
            "{report}"
        );
    }

    #[test]
    fn checkpoint_partial_region_sizes_warn() {
        let mut g = TaskGraph::new();
        g.add_task(
            ckpt("p", true),
            [(0u64, AccessMode::Out), (1u64, AccessMode::Out)],
        );
        g.add_task(
            ckpt("c", true),
            [(0u64, AccessMode::In), (1u64, AccessMode::In)],
        );
        let devices = fleet(vec![DeviceSpec::xeon_x86()]);
        // R0 declared, R1 (also live across the edge) missing.
        let res = crate::resilience::ResilienceConfig::new(Seconds(500.0))
            .with_region_sizes(HashMap::from([(RegionId(0), Bytes::mib(10))]));
        let cx = AnalysisContext {
            graph: &g,
            devices: &devices,
            objective: None,
            resilience: Some(&res),
        };
        let report = run_lints(&cx, &AnalysisConfig::new());
        let cks = only(&report, LintId::CheckpointClosure);
        assert_eq!(cks.len(), 1, "{report}");
        assert_eq!(cks[0].severity, Severity::Warn);
        assert_eq!(cks[0].regions, vec![RegionId(1)]);
    }

    // --- config & report plumbing ---

    #[test]
    fn disabled_lints_do_not_run() {
        let mut g = TaskGraph::new();
        g.add_task_with_deps(desc("a"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        g.add_task_with_deps(desc("b"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        let devices = fleet(vec![DeviceSpec::xeon_x86()]);
        let cx = AnalysisContext {
            graph: &g,
            devices: &devices,
            objective: None,
            resilience: None,
        };
        let config = AnalysisConfig::new().without_lint(LintId::RegionRace);
        let report = run_lints(&cx, &config);
        assert!(report.is_clean(), "{report}");
        assert!(!report.lints_run.contains(&LintId::RegionRace));
        assert_eq!(report.lints_run.len(), 3);
    }

    #[test]
    fn report_renders_severity_lint_and_counts() {
        let mut g = TaskGraph::new();
        g.add_task_with_deps(desc("a"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        g.add_task_with_deps(desc("b"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        let report = analyze(&g, &fleet(vec![DeviceSpec::xeon_x86()]));
        let text = report.to_string();
        assert!(text.contains("error[region-race]"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 0);
    }

    #[test]
    fn custom_passes_run_through_the_same_runner() {
        struct CountTasks;
        impl GraphLint for CountTasks {
            fn id(&self) -> LintId {
                LintId::RegionRace
            }
            fn check(&self, cx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
                if cx.graph.len() > 1 {
                    out.push(Diagnostic {
                        lint: self.id(),
                        severity: Severity::Warn,
                        tasks: Vec::new(),
                        regions: Vec::new(),
                        path: Vec::new(),
                        message: "too many tasks for my taste".into(),
                    });
                }
            }
        }
        let mut g = TaskGraph::new();
        g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        let devices = fleet(vec![DeviceSpec::xeon_x86()]);
        let cx = AnalysisContext {
            graph: &g,
            devices: &devices,
            objective: None,
            resilience: None,
        };
        let passes: Vec<Box<dyn GraphLint>> = vec![Box::new(CountTasks)];
        let report = run_with(&cx, &passes);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.warning_count(), 1);
    }
}
