//! Checkpoint levels of the multi-level scheme.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four levels of the FTI multi-level checkpoint scheme.
///
/// Higher levels survive harsher failures at higher cost; a production run
/// interleaves them (frequent L1, rare L4), which is what
/// [`FtiConfig`](crate::config::FtiConfig) interval counters express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CheckpointLevel {
    /// Local checkpoint on the node's NVMe.
    L1,
    /// Copy on a partner node (in partner memory/storage).
    L2,
    /// Reed–Solomon erasure coding across the process group.
    L3,
    /// Flush to the parallel file system.
    L4,
}

impl CheckpointLevel {
    /// All levels, cheapest first.
    pub const ALL: [CheckpointLevel; 4] = [
        CheckpointLevel::L1,
        CheckpointLevel::L2,
        CheckpointLevel::L3,
        CheckpointLevel::L4,
    ];

    /// How many simultaneous node losses the level tolerates
    /// (`usize::MAX` marks L4, which survives any node-set loss as long as
    /// the file system does).
    #[must_use]
    pub fn node_losses_survived(self, parity: usize) -> usize {
        match self {
            CheckpointLevel::L1 => 0,
            CheckpointLevel::L2 => 1,
            CheckpointLevel::L3 => parity,
            CheckpointLevel::L4 => usize::MAX,
        }
    }
}

impl fmt::Display for CheckpointLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckpointLevel::L1 => "L1",
            CheckpointLevel::L2 => "L2",
            CheckpointLevel::L3 => "L3",
            CheckpointLevel::L4 => "L4",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_ordered_by_strength() {
        assert!(CheckpointLevel::L1 < CheckpointLevel::L4);
        assert_eq!(CheckpointLevel::L1.node_losses_survived(2), 0);
        assert_eq!(CheckpointLevel::L2.node_losses_survived(2), 1);
        assert_eq!(CheckpointLevel::L3.node_losses_survived(2), 2);
        assert_eq!(CheckpointLevel::L4.node_losses_survived(2), usize::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(CheckpointLevel::L3.to_string(), "L3");
        assert_eq!(CheckpointLevel::ALL.len(), 4);
    }
}
