//! Systematic Reed–Solomon erasure coding over GF(2⁸).
//!
//! FTI's L3 checkpoints erasure-code each process group's checkpoint data
//! so that any `parity` lost shards (nodes) can be rebuilt from the
//! survivors. This is a from-scratch implementation: GF(256) arithmetic on
//! log/antilog tables over the AES-adjacent primitive polynomial `0x11d`,
//! a Vandermonde generator matrix made systematic by Gaussian elimination,
//! and reconstruction via inversion of the surviving rows.
//!
//! ```
//! use legato_fti::rs::ReedSolomon;
//!
//! # fn main() -> Result<(), legato_fti::FtiError> {
//! let rs = ReedSolomon::new(4, 2)?;
//! let mut shards: Vec<Vec<u8>> = vec![
//!     b"abcd".to_vec(), b"efgh".to_vec(), b"ijkl".to_vec(), b"mnop".to_vec(),
//! ];
//! let parity = rs.encode(&shards)?;
//! shards.extend(parity);
//!
//! // Lose any two shards...
//! let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! damaged[1] = None;
//! damaged[4] = None;
//! // ...and rebuild them.
//! rs.reconstruct(&mut damaged)?;
//! assert_eq!(damaged[1].as_deref(), Some(&b"efgh"[..]));
//! # Ok(())
//! # }
//! ```

use crate::error::FtiError;

/// GF(2⁸) primitive polynomial x⁸+x⁴+x³+x²+1.
const PRIM_POLY: u16 = 0x11d;

/// Log/antilog tables for GF(256) built at construction time.
#[derive(Debug, Clone)]
struct GfTables {
    log: [u8; 256],
    exp: [u8; 512],
}

impl GfTables {
    fn new() -> Self {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIM_POLY;
            }
        }
        // Duplicate for overflow-free multiplication.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        GfTables { log, exp }
    }

    #[inline]
    fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    #[inline]
    fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + 255 - self.log[b as usize] as usize]
        }
    }

    #[inline]
    fn inv(&self, a: u8) -> u8 {
        self.div(1, a)
    }

    /// a^n for small n.
    fn pow(&self, a: u8, n: usize) -> u8 {
        if n == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let l = (self.log[a as usize] as usize * n) % 255;
        self.exp[l]
    }
}

/// A systematic Reed–Solomon code with `data` data shards and `parity`
/// parity shards.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    gf: GfTables,
    /// Full (data+parity) × data generator matrix; top block is identity.
    matrix: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Create a code for `data` data shards plus `parity` parity shards.
    ///
    /// # Errors
    ///
    /// [`FtiError::LayoutMismatch`] when `data == 0`, `parity == 0` or
    /// `data + parity > 255` (the GF(256) field limit).
    pub fn new(data: usize, parity: usize) -> Result<Self, FtiError> {
        if data == 0 || parity == 0 {
            return Err(FtiError::LayoutMismatch(
                "need at least one data and one parity shard".into(),
            ));
        }
        if data + parity > 255 {
            return Err(FtiError::LayoutMismatch(format!(
                "data + parity must be ≤ 255, got {}",
                data + parity
            )));
        }
        let gf = GfTables::new();
        // Vandermonde (data+parity) × data: V[i][j] = (i+1)^j. Using i+1
        // keeps every row nonzero; any `data` rows are linearly
        // independent.
        let rows = data + parity;
        let mut vandermonde = vec![vec![0u8; data]; rows];
        for (i, row) in vandermonde.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = gf.pow((i + 1) as u8, j);
            }
        }
        // Make systematic: matrix = V · (top-k of V)⁻¹ so the top block
        // becomes the identity and data shards are stored verbatim.
        let top: Vec<Vec<u8>> = vandermonde[..data].to_vec();
        let top_inv = invert_matrix(&gf, &top).ok_or_else(|| {
            FtiError::LayoutMismatch("vandermonde top block must be invertible".into())
        })?;
        let matrix = matmul(&gf, &vandermonde, &top_inv);
        Ok(ReedSolomon {
            data,
            parity,
            gf,
            matrix,
        })
    }

    /// Number of data shards.
    #[must_use]
    pub fn data_shards(&self) -> usize {
        self.data
    }

    /// Number of parity shards.
    #[must_use]
    pub fn parity_shards(&self) -> usize {
        self.parity
    }

    /// Compute the parity shards for `shards` (must be exactly
    /// `data_shards` equal-length slices).
    ///
    /// # Errors
    ///
    /// [`FtiError::LayoutMismatch`] on a wrong shard count;
    /// [`FtiError::ShardLengthMismatch`] on unequal shard lengths.
    pub fn encode<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<Vec<Vec<u8>>, FtiError> {
        if shards.len() != self.data {
            return Err(FtiError::LayoutMismatch(format!(
                "expected {} data shards, got {}",
                self.data,
                shards.len()
            )));
        }
        let len = shards[0].as_ref().len();
        if let Some(bad) = shards.iter().find(|s| s.as_ref().len() != len) {
            return Err(FtiError::ShardLengthMismatch {
                expected: len,
                got: bad.as_ref().len(),
            });
        }
        let mut parity = vec![vec![0u8; len]; self.parity];
        for (p, out) in parity.iter_mut().enumerate() {
            let row = &self.matrix[self.data + p];
            for (j, shard) in shards.iter().enumerate() {
                let coef = row[j];
                if coef == 0 {
                    continue;
                }
                for (o, &b) in out.iter_mut().zip(shard.as_ref()) {
                    *o ^= self.gf.mul(coef, b);
                }
            }
        }
        Ok(parity)
    }

    /// Rebuild missing shards in place. `shards` must hold
    /// `data + parity` entries (data first); `None` marks an erasure. At
    /// least `data` entries must be present.
    ///
    /// # Errors
    ///
    /// [`FtiError::TooManyErasures`] when fewer than `data` shards
    /// survive; [`FtiError::LayoutMismatch`] on a wrong slot count;
    /// [`FtiError::ShardLengthMismatch`] when the surviving shards do not
    /// all have the same length (a malformed input — decoding mixed
    /// lengths would silently produce garbage, so it is rejected up
    /// front and the shards are left untouched).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), FtiError> {
        let total = self.data + self.parity;
        if shards.len() != total {
            return Err(FtiError::LayoutMismatch(format!(
                "expected {total} shard slots, got {}",
                shards.len()
            )));
        }
        let present: Vec<usize> = (0..total).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.data {
            return Err(FtiError::TooManyErasures {
                present: present.len(),
                required: self.data,
            });
        }
        let mut lengths = present.iter().filter_map(|&i| shards[i].as_deref());
        let len = lengths.next().map_or(0, <[u8]>::len);
        if let Some(bad) = lengths.find(|s| s.len() != len) {
            return Err(FtiError::ShardLengthMismatch {
                expected: len,
                got: bad.len(),
            });
        }

        // Decode matrix: rows of the generator matrix for `data` surviving
        // shards, inverted.
        let chosen = &present[..self.data];
        let sub: Vec<Vec<u8>> = chosen.iter().map(|&i| self.matrix[i].clone()).collect();
        let inv = invert_matrix(&self.gf, &sub)
            .ok_or_else(|| FtiError::LayoutMismatch("decode matrix is singular".into()))?;

        // Rebuild the original data shards: data = inv · survivors.
        let mut data_shards: Vec<Vec<u8>> = Vec::with_capacity(self.data);
        for row in &inv {
            let mut out = vec![0u8; len];
            for (j, &src_idx) in chosen.iter().enumerate() {
                let coef = row[j];
                if coef == 0 {
                    continue;
                }
                let src = shards[src_idx].as_ref().expect("present");
                for (o, &b) in out.iter_mut().zip(src) {
                    *o ^= self.gf.mul(coef, b);
                }
            }
            data_shards.push(out);
        }

        // Fill in missing data shards.
        for i in 0..self.data {
            if shards[i].is_none() {
                shards[i] = Some(data_shards[i].clone());
            }
        }
        // Re-encode missing parity shards.
        let parity = self.encode(&data_shards)?;
        for p in 0..self.parity {
            if shards[self.data + p].is_none() {
                shards[self.data + p] = Some(parity[p].clone());
            }
        }
        Ok(())
    }
}

/// Multiply two matrices over GF(256).
fn matmul(gf: &GfTables, a: &[Vec<u8>], b: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let n = a.len();
    let k = b.len();
    let m = b[0].len();
    let mut out = vec![vec![0u8; m]; n];
    for i in 0..n {
        for (j, out_cell) in out[i].iter_mut().enumerate() {
            let mut acc = 0u8;
            for l in 0..k {
                acc ^= gf.mul(a[i][l], b[l][j]);
            }
            *out_cell = acc;
        }
    }
    out
}

/// Invert a square matrix over GF(256) by Gauss–Jordan elimination.
/// Returns `None` if singular.
fn invert_matrix(gf: &GfTables, m: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    // Augmented [M | I].
    let mut aug: Vec<Vec<u8>> = m
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.extend((0..n).map(|j| u8::from(i == j)));
            r
        })
        .collect();
    for col in 0..n {
        // Find pivot.
        let pivot = (col..n).find(|&r| aug[r][col] != 0)?;
        aug.swap(col, pivot);
        // Scale pivot row.
        let inv = gf.inv(aug[col][col]);
        for x in &mut aug[col] {
            *x = gf.mul(*x, inv);
        }
        // Eliminate other rows (pivot row snapshot keeps the borrows
        // disjoint).
        let pivot_row = aug[col].clone();
        for (r, row) in aug.iter_mut().enumerate() {
            if r != col && row[col] != 0 {
                let factor = row[col];
                for (target, &p) in row.iter_mut().zip(&pivot_row) {
                    *target ^= gf.mul(factor, p);
                }
            }
        }
    }
    Some(aug.into_iter().map(|row| row[n..].to_vec()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_mul_properties() {
        let gf = GfTables::new();
        // Identity and zero.
        for a in 0..=255u8 {
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(a, 0), 0);
        }
        // Commutativity (spot).
        assert_eq!(gf.mul(87, 131), gf.mul(131, 87));
        // Known value: 2·2 = 4 in GF(256).
        assert_eq!(gf.mul(2, 2), 4);
        // x^7 · x = x^8 = 0x1d (reduction kicks in).
        assert_eq!(gf.mul(0x80, 2), 0x1d);
    }

    #[test]
    fn gf_inverse_round_trip() {
        let gf = GfTables::new();
        for a in 1..=255u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "inv failed for {a}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn gf_div_by_zero_panics() {
        let gf = GfTables::new();
        let _ = gf.div(1, 0);
    }

    #[test]
    fn gf_pow() {
        let gf = GfTables::new();
        assert_eq!(gf.pow(7, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
        assert_eq!(gf.pow(2, 8), 0x1d);
    }

    #[test]
    fn matrix_inverse_identity() {
        let gf = GfTables::new();
        let m = vec![vec![1, 0], vec![0, 1]];
        assert_eq!(invert_matrix(&gf, &m).unwrap(), m);
    }

    #[test]
    fn singular_matrix_rejected() {
        let gf = GfTables::new();
        let m = vec![vec![1, 1], vec![1, 1]];
        assert!(invert_matrix(&gf, &m).is_none());
    }

    #[test]
    fn systematic_top_block_is_identity() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(rs.matrix[i][j], u8::from(i == j));
            }
        }
    }

    #[test]
    fn encode_reconstruct_data_loss() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4)
            .map(|i| (0..64).map(|j| (i * 64 + j) as u8).collect())
            .collect();
        let parity = rs.encode(&data).unwrap();
        let mut all: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
        all[0] = None;
        all[3] = None;
        rs.reconstruct(&mut all).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(all[i].as_ref().unwrap(), d);
        }
    }

    #[test]
    fn encode_reconstruct_parity_loss() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = vec![vec![1u8; 16], vec![2u8; 16], vec![3u8; 16]];
        let parity = rs.encode(&data).unwrap();
        let mut all: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.clone())
            .map(Some)
            .collect();
        all[3] = None;
        all[4] = None;
        rs.reconstruct(&mut all).unwrap();
        assert_eq!(all[3].as_ref().unwrap(), &parity[0]);
        assert_eq!(all[4].as_ref().unwrap(), &parity[1]);
    }

    #[test]
    fn mixed_loss_at_capacity() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 10; 32]).collect();
        let parity = rs.encode(&data).unwrap();
        let mut all: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
        // Lose 3 shards (= parity count): 2 data + 1 parity.
        all[1] = None;
        all[2] = None;
        all[5] = None;
        rs.reconstruct(&mut all).unwrap();
        assert_eq!(all[1].as_ref().unwrap(), &data[1]);
        assert_eq!(all[2].as_ref().unwrap(), &data[2]);
    }

    #[test]
    fn too_many_erasures_detected() {
        let rs = ReedSolomon::new(3, 1).unwrap();
        let data = vec![vec![0u8; 8]; 3];
        let parity = rs.encode(&data).unwrap();
        let mut all: Vec<Option<Vec<u8>>> = data.into_iter().chain(parity).map(Some).collect();
        all[0] = None;
        all[1] = None;
        assert!(matches!(
            rs.reconstruct(&mut all),
            Err(FtiError::TooManyErasures {
                present: 2,
                required: 3
            })
        ));
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(ReedSolomon::new(0, 1).is_err());
        assert!(ReedSolomon::new(1, 0).is_err());
        assert!(ReedSolomon::new(200, 100).is_err());
        assert!(ReedSolomon::new(128, 127).is_ok());
    }

    #[test]
    fn rejects_unequal_shards() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert_eq!(
            rs.encode(&[vec![0u8; 4], vec![0u8; 5]]),
            Err(FtiError::ShardLengthMismatch {
                expected: 4,
                got: 5
            })
        );
        assert!(rs.encode(&[vec![0u8; 4]]).is_err());
    }

    /// Malformed input: present shards of unequal length must be rejected
    /// with a dedicated error (historically this path `expect()`-panicked
    /// mid-decode), and the shard array must be left untouched.
    #[test]
    fn reconstruct_rejects_unequal_present_shards() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = vec![vec![1u8; 16], vec![2u8; 16], vec![3u8; 16]];
        let parity = rs.encode(&data).unwrap();
        let mut all: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
        all[0] = None; // one genuine erasure
        all[2] = Some(vec![9u8; 7]); // truncated survivor
        let before = all.clone();
        assert_eq!(
            rs.reconstruct(&mut all),
            Err(FtiError::ShardLengthMismatch {
                expected: 16,
                got: 7
            })
        );
        assert_eq!(all, before, "rejected input must not be modified");

        // A truncated *parity* survivor is caught the same way.
        let mut all: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(rs.encode(&data).unwrap())
            .map(Some)
            .collect();
        all[1] = None;
        all[4] = Some(vec![0u8; 3]);
        assert!(matches!(
            rs.reconstruct(&mut all),
            Err(FtiError::ShardLengthMismatch {
                expected: 16,
                got: 3
            })
        ));
    }

    #[test]
    fn empty_shards_encode() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let parity = rs.encode(&[vec![], vec![]]).unwrap();
        assert_eq!(parity, vec![Vec::<u8>::new()]);
    }
}
