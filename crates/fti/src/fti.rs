//! The per-process checkpoint engine (the `FTI_*` API of Listing 1).

use std::collections::BTreeMap;

use legato_core::units::{Bytes, Seconds};
use legato_hw::memory::{AddrSpace, MemoryManager, PinMode, RegionHandle};
use legato_hw::storage::{StorageDevice, StorageTier, WriteMode};
use legato_hw::time::pipeline_time;
use serde::{Deserialize, Serialize};

use crate::config::FtiConfig;
use crate::error::FtiError;
use crate::level::CheckpointLevel;

/// Which implementation of the GPU checkpoint path is used.
///
/// The paper compares its *initial* implementation against the optimized
/// asynchronous one and measures ~10× improvement (§IV); Fig. 6 labels the
/// two series "Initial" and "Async".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Synchronous per-chunk staging through pageable host memory and
    /// chunk-synchronous writes.
    Initial,
    /// Pinned staging buffers; chunked device→host copies overlapped with
    /// streaming storage writes.
    Async,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Initial => f.write_str("initial"),
            Strategy::Async => f.write_str("async"),
        }
    }
}

/// One protected datum: a real memory region or a phantom (metadata-only)
/// region used for paper-scale timing studies without materializing
/// terabytes.
#[derive(Debug, Clone, PartialEq)]
enum Protected {
    Real {
        handle: RegionHandle,
        space: AddrSpace,
        size: Bytes,
    },
    Phantom {
        space: AddrSpace,
        size: Bytes,
    },
}

impl Protected {
    fn size(&self) -> Bytes {
        match self {
            Protected::Real { size, .. } | Protected::Phantom { size, .. } => *size,
        }
    }

    fn space(&self) -> AddrSpace {
        match self {
            Protected::Real { space, .. } | Protected::Phantom { space, .. } => *space,
        }
    }
}

/// A stored checkpoint (the "file" on the simulated storage).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct StoredCheckpoint {
    /// Monotone checkpoint version.
    pub version: u64,
    /// `(id, bytes)` blobs for real regions; phantom regions store no
    /// payload.
    pub blobs: Vec<(u32, Vec<u8>)>,
    /// `(id, size)` layout of everything included (real and phantom).
    pub layout: Vec<(u32, u64)>,
    /// Total checkpointed bytes (real + phantom).
    pub bytes: Bytes,
}

/// Outcome of one checkpoint operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// Level written.
    pub level: CheckpointLevel,
    /// Strategy used.
    pub strategy: Strategy,
    /// Bytes captured.
    pub bytes: Bytes,
    /// Simulated start time.
    pub start: Seconds,
    /// Simulated completion time.
    pub finish: Seconds,
    /// Checkpoint version.
    pub version: u64,
}

impl CheckpointReport {
    /// Wall-clock duration of the operation.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.finish - self.start
    }
}

/// Outcome of one recovery operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverReport {
    /// Level the data was recovered from.
    pub level: CheckpointLevel,
    /// Strategy used for the restore path.
    pub strategy: Strategy,
    /// Bytes restored.
    pub bytes: Bytes,
    /// Simulated start time.
    pub start: Seconds,
    /// Simulated completion time.
    pub finish: Seconds,
    /// Version recovered.
    pub version: u64,
}

impl RecoverReport {
    /// Wall-clock duration of the operation.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.finish - self.start
    }
}

/// Per-process checkpoint engine.
///
/// See the [crate-level example](crate) for the protect → checkpoint →
/// recover flow.
#[derive(Debug, Clone)]
pub struct Fti {
    config: FtiConfig,
    rank: usize,
    protected: BTreeMap<u32, Protected>,
    snapshot_counter: u32,
    version: u64,
    /// Local (L1) checkpoint storage; higher levels live in
    /// [`FtiGroup`](crate::group::FtiGroup).
    local: Option<StoredCheckpoint>,
}

impl Fti {
    /// Create an engine for `rank` (cf. `FTI_Init`).
    #[must_use]
    pub fn new(config: FtiConfig, rank: usize) -> Self {
        Fti {
            config,
            rank,
            protected: BTreeMap::new(),
            snapshot_counter: 0,
            version: 0,
            local: None,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &FtiConfig {
        &self.config
    }

    /// This process's rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Protect a real memory region under `id` (cf. `FTI_Protect`). The
    /// region may live in host, device or unified memory — the library
    /// handles each address type (paper §IV).
    ///
    /// # Errors
    ///
    /// [`FtiError::DuplicateId`] if `id` is taken; [`FtiError::Memory`] if
    /// the handle is stale.
    pub fn protect(
        &mut self,
        id: u32,
        handle: RegionHandle,
        mm: &MemoryManager,
    ) -> Result<(), FtiError> {
        if self.protected.contains_key(&id) {
            return Err(FtiError::DuplicateId(id));
        }
        let space = mm.space(handle)?;
        let size = mm.size(handle)?;
        self.protected.insert(
            id,
            Protected::Real {
                handle,
                space,
                size,
            },
        );
        Ok(())
    }

    /// Protect a phantom region: contributes its size and address space to
    /// all timing models but stores no payload. Used to reproduce the
    /// paper-scale (16/32 GB-per-process) Fig. 6 runs without allocating
    /// terabytes.
    ///
    /// # Errors
    ///
    /// [`FtiError::DuplicateId`] if `id` is taken.
    pub fn protect_phantom(
        &mut self,
        id: u32,
        space: AddrSpace,
        size: Bytes,
    ) -> Result<(), FtiError> {
        if self.protected.contains_key(&id) {
            return Err(FtiError::DuplicateId(id));
        }
        self.protected
            .insert(id, Protected::Phantom { space, size });
        Ok(())
    }

    /// Total protected bytes.
    #[must_use]
    pub fn protected_bytes(&self) -> Bytes {
        self.protected.values().map(Protected::size).sum()
    }

    /// Number of protected regions.
    #[must_use]
    pub fn protected_count(&self) -> usize {
        self.protected.len()
    }

    /// Whether a local (L1) checkpoint exists.
    #[must_use]
    pub fn has_local_checkpoint(&self) -> bool {
        self.local.is_some()
    }

    /// Decide whether a checkpoint is due and, if so, take it
    /// (cf. `FTI_Snapshot`). The highest due level wins.
    ///
    /// Returns `Ok(None)` when no level is due this iteration.
    ///
    /// # Errors
    ///
    /// Propagates [`Fti::checkpoint`] errors.
    pub fn snapshot(
        &mut self,
        mm: &mut MemoryManager,
        storage: &mut StorageDevice,
        strategy: Strategy,
        now: Seconds,
    ) -> Result<Option<CheckpointReport>, FtiError> {
        self.snapshot_counter += 1;
        let c = self.snapshot_counter;
        let level = if c.is_multiple_of(self.config.l4_every) {
            Some(CheckpointLevel::L4)
        } else if c.is_multiple_of(self.config.l3_every) {
            Some(CheckpointLevel::L3)
        } else if c.is_multiple_of(self.config.l2_every) {
            Some(CheckpointLevel::L2)
        } else if c.is_multiple_of(self.config.l1_every) {
            Some(CheckpointLevel::L1)
        } else {
            None
        };
        match level {
            None => Ok(None),
            Some(level) => self.checkpoint(mm, storage, level, strategy, now).map(Some),
        }
    }

    /// Take a checkpoint of all protected regions at `level` using
    /// `strategy`, on `storage` (the node-local device for L1; group
    /// levels route through [`FtiGroup`](crate::group::FtiGroup)).
    ///
    /// # Errors
    ///
    /// [`FtiError::Memory`] if a protected region disappeared.
    pub fn checkpoint(
        &mut self,
        mm: &mut MemoryManager,
        storage: &mut StorageDevice,
        level: CheckpointLevel,
        strategy: Strategy,
        now: Seconds,
    ) -> Result<CheckpointReport, FtiError> {
        let duration = self.checkpoint_duration(mm, &storage.tier, strategy);
        let total = self.protected_bytes();
        let (start, finish) = storage.occupy(now, duration, total);

        // Capture payloads of real regions.
        let mut blobs = Vec::new();
        let mut layout = Vec::new();
        for (&id, p) in &self.protected {
            layout.push((id, p.size().as_u64()));
            if let Protected::Real { handle, .. } = p {
                let (bytes, _cost) = mm.read_for_host(*handle)?;
                blobs.push((id, bytes));
            }
        }
        self.version += 1;
        let stored = StoredCheckpoint {
            version: self.version,
            blobs,
            layout,
            bytes: total,
        };
        self.local = Some(stored);
        Ok(CheckpointReport {
            level,
            strategy,
            bytes: total,
            start,
            finish,
            version: self.version,
        })
    }

    /// Recover all protected regions from the local (L1) checkpoint.
    ///
    /// # Errors
    ///
    /// [`FtiError::NoCheckpoint`] when no local checkpoint exists;
    /// [`FtiError::LayoutMismatch`] when the stored layout disagrees with
    /// the protected set; [`FtiError::Memory`] on substrate errors.
    pub fn recover(
        &mut self,
        mm: &mut MemoryManager,
        storage: &mut StorageDevice,
        strategy: Strategy,
        now: Seconds,
    ) -> Result<RecoverReport, FtiError> {
        let stored = self.local.clone().ok_or(FtiError::NoCheckpoint)?;
        self.verify_layout(&stored)?;
        let duration = self.recover_duration(mm, &storage.tier, strategy);
        let (start, finish) = storage.occupy_read(now, duration, stored.bytes);
        for (id, bytes) in &stored.blobs {
            if let Some(Protected::Real { handle, .. }) = self.protected.get(id) {
                mm.restore_from_host(*handle, bytes)?;
            }
        }
        Ok(RecoverReport {
            level: CheckpointLevel::L1,
            strategy,
            bytes: stored.bytes,
            start,
            finish,
            version: stored.version,
        })
    }

    /// Duration of a checkpoint of the current protected set.
    ///
    /// *Initial* strategy: the device and UVM payloads are staged to
    /// pageable host memory chunk by chunk (degraded PCIe bandwidth), and
    /// only then is the whole image written with a synchronization per
    /// small chunk — nothing overlaps.
    ///
    /// *Async* strategy: device/UVM chunks are copied through pinned
    /// buffers and overlapped with streaming writes (two-stage pipeline);
    /// host-resident bytes stream straight to storage.
    #[must_use]
    pub fn checkpoint_duration(
        &self,
        mm: &MemoryManager,
        tier: &legato_hw::storage::StorageTier,
        strategy: Strategy,
    ) -> Seconds {
        let (device, uvm, host) = self.bytes_by_space();
        match strategy {
            Strategy::Initial => {
                let copy = mm.pcie_time(device, PinMode::Unpinned) + mm.uvm_migration_time(uvm);
                let write = tier.write_time(
                    device + uvm + host,
                    WriteMode::ChunkSync {
                        chunk: self.config.initial_chunk,
                    },
                );
                copy + write
            }
            Strategy::Async => {
                let staged = device + uvm;
                let chunk = self.config.async_chunk;
                let pipe = if staged > Bytes::ZERO {
                    let chunks = staged.as_u64().div_ceil(chunk.as_u64());
                    let copy_stage = mm.pcie_time(chunk.min(staged), PinMode::Pinned);
                    let write_stage = chunk.min(staged).time_at(tier.write_bw);
                    pipeline_time(chunks, &[copy_stage, write_stage])
                } else {
                    Seconds::ZERO
                };
                let host_write = if host > Bytes::ZERO {
                    host.time_at(tier.write_bw)
                } else {
                    Seconds::ZERO
                };
                tier.setup_latency + pipe + host_write
            }
        }
    }

    /// Duration of a recovery of the current protected set (the reversed
    /// procedure: storage read then host→device movement, overlapped in
    /// the async strategy).
    #[must_use]
    pub fn recover_duration(
        &self,
        mm: &MemoryManager,
        tier: &legato_hw::storage::StorageTier,
        strategy: Strategy,
    ) -> Seconds {
        let (device, uvm, host) = self.bytes_by_space();
        match strategy {
            Strategy::Initial => {
                let read = tier.read_time(
                    device + uvm + host,
                    WriteMode::ChunkSync {
                        chunk: self.config.initial_chunk,
                    },
                );
                let copy = mm.pcie_time(device, PinMode::Unpinned) + mm.uvm_migration_time(uvm);
                read + copy
            }
            Strategy::Async => {
                let staged = device + uvm;
                let chunk = self.config.async_chunk;
                let pipe = if staged > Bytes::ZERO {
                    let chunks = staged.as_u64().div_ceil(chunk.as_u64());
                    let read_stage = chunk.min(staged).time_at(tier.read_bw);
                    let copy_stage = mm.pcie_time(chunk.min(staged), PinMode::Pinned);
                    pipeline_time(chunks, &[read_stage, copy_stage])
                } else {
                    Seconds::ZERO
                };
                let host_read = if host > Bytes::ZERO {
                    host.time_at(tier.read_bw)
                } else {
                    Seconds::ZERO
                };
                tier.setup_latency + pipe + host_read
            }
        }
    }

    /// Bytes protected per address-space class: `(device, uvm, host)`.
    #[must_use]
    pub fn bytes_by_space(&self) -> (Bytes, Bytes, Bytes) {
        let mut device = Bytes::ZERO;
        let mut uvm = Bytes::ZERO;
        let mut host = Bytes::ZERO;
        for p in self.protected.values() {
            match p.space() {
                AddrSpace::Device(_) => device += p.size(),
                AddrSpace::Unified => uvm += p.size(),
                AddrSpace::Host => host += p.size(),
            }
        }
        (device, uvm, host)
    }

    pub(crate) fn local_checkpoint(&self) -> Option<&StoredCheckpoint> {
        self.local.as_ref()
    }

    pub(crate) fn drop_local_checkpoint(&mut self) {
        self.local = None;
    }

    pub(crate) fn install_checkpoint(&mut self, ckpt: StoredCheckpoint) {
        self.version = self.version.max(ckpt.version);
        self.local = Some(ckpt);
    }

    pub(crate) fn restore_blobs(
        &self,
        mm: &mut MemoryManager,
        stored: &StoredCheckpoint,
    ) -> Result<(), FtiError> {
        self.verify_layout(stored)?;
        for (id, bytes) in &stored.blobs {
            if let Some(Protected::Real { handle, .. }) = self.protected.get(id) {
                mm.restore_from_host(*handle, bytes)?;
            }
        }
        Ok(())
    }

    fn verify_layout(&self, stored: &StoredCheckpoint) -> Result<(), FtiError> {
        let current: Vec<(u32, u64)> = self
            .protected
            .iter()
            .map(|(&id, p)| (id, p.size().as_u64()))
            .collect();
        if current != stored.layout {
            return Err(FtiError::LayoutMismatch(format!(
                "protected set {current:?} vs stored {:?}",
                stored.layout
            )));
        }
        Ok(())
    }
}

/// Simulated wall-clock cost of writing a checkpoint image of `bytes`
/// host-resident bytes to `tier` under `strategy` — the cost model the
/// execution engine in `legato-runtime` charges for each task-frontier
/// checkpoint. An empty image is free.
///
/// This reuses the exact [`Fti::checkpoint_duration`] timing (chunk sizes
/// from `config`, bandwidths and latencies from the [`StorageTier`]) via a
/// phantom region, so the engine's per-checkpoint charge and the Fig. 6
/// strategy comparison can never drift apart.
#[must_use]
pub fn checkpoint_cost(
    config: &FtiConfig,
    tier: &StorageTier,
    strategy: Strategy,
    bytes: Bytes,
) -> Seconds {
    if bytes == Bytes::ZERO {
        return Seconds::ZERO;
    }
    let mut fti = Fti::new(config.clone(), 0);
    fti.protect_phantom(0, AddrSpace::Host, bytes)
        .expect("fresh engine has no protected ids");
    fti.checkpoint_duration(&MemoryManager::new(), tier, strategy)
}

/// Simulated wall-clock cost of restoring a checkpoint image of `bytes`
/// host-resident bytes from `tier` under `strategy` (the restart half of
/// [`checkpoint_cost`]). An empty image is free.
#[must_use]
pub fn restart_cost(
    config: &FtiConfig,
    tier: &StorageTier,
    strategy: Strategy,
    bytes: Bytes,
) -> Seconds {
    if bytes == Bytes::ZERO {
        return Seconds::ZERO;
    }
    let mut fti = Fti::new(config.clone(), 0);
    fti.protect_phantom(0, AddrSpace::Host, bytes)
        .expect("fresh engine has no protected ids");
    fti.recover_duration(&MemoryManager::new(), tier, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use legato_hw::DeviceId;

    fn setup() -> (MemoryManager, StorageDevice, Fti) {
        (
            MemoryManager::new(),
            StorageDevice::new(StorageTier::local_nvme()),
            Fti::new(FtiConfig::default(), 0),
        )
    }

    #[test]
    fn protect_duplicate_rejected() {
        let (mut mm, _s, mut fti) = setup();
        let h = mm.alloc(AddrSpace::Host, Bytes::kib(1)).unwrap();
        fti.protect(0, h, &mm).unwrap();
        assert_eq!(fti.protect(0, h, &mm), Err(FtiError::DuplicateId(0)));
        assert_eq!(fti.protected_count(), 1);
    }

    #[test]
    fn checkpoint_recover_round_trip_all_spaces() {
        let (mut mm, mut storage, mut fti) = setup();
        let host = mm.alloc(AddrSpace::Host, Bytes::kib(4)).unwrap();
        let uvm = mm.alloc(AddrSpace::Unified, Bytes::kib(4)).unwrap();
        let dev = mm
            .alloc(AddrSpace::Device(DeviceId(0)), Bytes::kib(4))
            .unwrap();
        mm.write(host, 0, &[1; 64]).unwrap();
        mm.write(uvm, 0, &[2; 64]).unwrap();
        mm.write(dev, 0, &[3; 64]).unwrap();
        fti.protect(0, host, &mm).unwrap();
        fti.protect(1, uvm, &mm).unwrap();
        fti.protect(2, dev, &mm).unwrap();

        let rep = fti
            .checkpoint(
                &mut mm,
                &mut storage,
                CheckpointLevel::L1,
                Strategy::Async,
                Seconds::ZERO,
            )
            .unwrap();
        assert_eq!(rep.bytes, Bytes::kib(12));
        assert_eq!(rep.version, 1);

        // Clobber everything, recover, verify.
        mm.write(host, 0, &[9; 64]).unwrap();
        mm.write(uvm, 0, &[9; 64]).unwrap();
        mm.write(dev, 0, &[9; 64]).unwrap();
        fti.recover(&mut mm, &mut storage, Strategy::Async, rep.finish)
            .unwrap();
        assert_eq!(mm.data(host).unwrap()[..64], [1; 64]);
        assert_eq!(mm.data(uvm).unwrap()[..64], [2; 64]);
        assert_eq!(mm.read_for_host(dev).unwrap().0[..64], [3; 64]);
    }

    #[test]
    fn recover_without_checkpoint_errors() {
        let (mut mm, mut storage, mut fti) = setup();
        assert_eq!(
            fti.recover(&mut mm, &mut storage, Strategy::Async, Seconds::ZERO),
            Err(FtiError::NoCheckpoint)
        );
    }

    #[test]
    fn async_much_faster_than_initial_for_device_data() {
        // 2 GiB of device-resident data, the Fig. 6 situation per process.
        let (mut mm, storage, mut fti) = setup();
        let dev = mm
            .alloc(AddrSpace::Device(DeviceId(0)), Bytes::ZERO)
            .unwrap();
        fti.protect(0, dev, &mm).unwrap();
        fti.protect_phantom(1, AddrSpace::Device(DeviceId(0)), Bytes::gib(2))
            .unwrap();
        let t_init = fti.checkpoint_duration(&mm, &storage.tier, Strategy::Initial);
        let t_async = fti.checkpoint_duration(&mm, &storage.tier, Strategy::Async);
        let ratio = t_init / t_async;
        assert!(
            (8.0..20.0).contains(&ratio),
            "expected ~10-12x, got {ratio:.2} ({t_init} vs {t_async})"
        );
    }

    #[test]
    fn recover_ratio_is_smaller_than_checkpoint_ratio() {
        // The paper: 12.05× ckpt reduction but 5.13× recover reduction.
        let (mut _mm, storage, mut fti) = setup();
        let mm = MemoryManager::new();
        fti.protect_phantom(0, AddrSpace::Unified, Bytes::gib(2))
            .unwrap();
        let ck = fti.checkpoint_duration(&mm, &storage.tier, Strategy::Initial)
            / fti.checkpoint_duration(&mm, &storage.tier, Strategy::Async);
        let rc = fti.recover_duration(&mm, &storage.tier, Strategy::Initial)
            / fti.recover_duration(&mm, &storage.tier, Strategy::Async);
        assert!(
            rc < ck,
            "recover ratio {rc:.2} should be below ckpt ratio {ck:.2}"
        );
        assert!(
            rc > 2.0,
            "recover ratio {rc:.2} should still be substantial"
        );
    }

    #[test]
    fn snapshot_cadence_selects_levels() {
        let cfg = FtiConfig::builder()
            .l1_every(1)
            .l2_every(2)
            .l3_every(4)
            .l4_every(8)
            .build();
        let mut fti = Fti::new(cfg, 0);
        let mut mm = MemoryManager::new();
        let h = mm.alloc(AddrSpace::Host, Bytes::kib(1)).unwrap();
        fti.protect(0, h, &mm).unwrap();
        let mut storage = StorageDevice::new(StorageTier::local_nvme());
        let mut levels = Vec::new();
        for _ in 0..8 {
            let rep = fti
                .snapshot(&mut mm, &mut storage, Strategy::Async, Seconds::ZERO)
                .unwrap()
                .unwrap();
            levels.push(rep.level);
        }
        use CheckpointLevel::*;
        assert_eq!(levels, vec![L1, L2, L1, L3, L1, L2, L1, L4]);
    }

    #[test]
    fn snapshot_skips_when_not_due() {
        let cfg = FtiConfig::builder()
            .l1_every(3)
            .l2_every(100)
            .l3_every(100)
            .l4_every(100)
            .build();
        let mut fti = Fti::new(cfg, 0);
        let mut mm = MemoryManager::new();
        let h = mm.alloc(AddrSpace::Host, Bytes::kib(1)).unwrap();
        fti.protect(0, h, &mm).unwrap();
        let mut storage = StorageDevice::new(StorageTier::local_nvme());
        assert!(fti
            .snapshot(&mut mm, &mut storage, Strategy::Async, Seconds::ZERO)
            .unwrap()
            .is_none());
        assert!(fti
            .snapshot(&mut mm, &mut storage, Strategy::Async, Seconds::ZERO)
            .unwrap()
            .is_none());
        assert!(fti
            .snapshot(&mut mm, &mut storage, Strategy::Async, Seconds::ZERO)
            .unwrap()
            .is_some());
    }

    #[test]
    fn layout_change_detected_on_recover() {
        let (mut mm, mut storage, mut fti) = setup();
        let h = mm.alloc(AddrSpace::Host, Bytes::kib(1)).unwrap();
        fti.protect(0, h, &mm).unwrap();
        fti.checkpoint(
            &mut mm,
            &mut storage,
            CheckpointLevel::L1,
            Strategy::Async,
            Seconds::ZERO,
        )
        .unwrap();
        // Protect an extra region after the checkpoint: layout mismatch.
        let h2 = mm.alloc(AddrSpace::Host, Bytes::kib(2)).unwrap();
        fti.protect(1, h2, &mm).unwrap();
        assert!(matches!(
            fti.recover(&mut mm, &mut storage, Strategy::Async, Seconds::ZERO),
            Err(FtiError::LayoutMismatch(_))
        ));
    }

    #[test]
    fn versions_increment() {
        let (mut mm, mut storage, mut fti) = setup();
        let h = mm.alloc(AddrSpace::Host, Bytes::kib(1)).unwrap();
        fti.protect(0, h, &mm).unwrap();
        for expect in 1..=3 {
            let rep = fti
                .checkpoint(
                    &mut mm,
                    &mut storage,
                    CheckpointLevel::L1,
                    Strategy::Async,
                    Seconds::ZERO,
                )
                .unwrap();
            assert_eq!(rep.version, expect);
        }
    }

    #[test]
    fn storage_contention_serializes_checkpoints() {
        // Two processes sharing one NVMe: second checkpoint starts after
        // the first finishes.
        let mut mm = MemoryManager::new();
        let mut storage = StorageDevice::new(StorageTier::local_nvme());
        let mut fti_a = Fti::new(FtiConfig::default(), 0);
        let mut fti_b = Fti::new(FtiConfig::default(), 1);
        fti_a
            .protect_phantom(0, AddrSpace::Host, Bytes::mib(512))
            .unwrap();
        fti_b
            .protect_phantom(0, AddrSpace::Host, Bytes::mib(512))
            .unwrap();
        let a = fti_a
            .checkpoint(
                &mut mm,
                &mut storage,
                CheckpointLevel::L1,
                Strategy::Async,
                Seconds::ZERO,
            )
            .unwrap();
        let b = fti_b
            .checkpoint(
                &mut mm,
                &mut storage,
                CheckpointLevel::L1,
                Strategy::Async,
                Seconds::ZERO,
            )
            .unwrap();
        assert_eq!(b.start, a.finish);
    }

    #[test]
    fn cost_api_matches_phantom_checkpoint_and_is_monotone() {
        let cfg = FtiConfig::default();
        let tier = StorageTier::local_nvme();
        assert_eq!(
            checkpoint_cost(&cfg, &tier, Strategy::Async, Bytes::ZERO),
            Seconds::ZERO
        );
        assert_eq!(
            restart_cost(&cfg, &tier, Strategy::Initial, Bytes::ZERO),
            Seconds::ZERO
        );
        let small = checkpoint_cost(&cfg, &tier, Strategy::Async, Bytes::mib(64));
        let large = checkpoint_cost(&cfg, &tier, Strategy::Async, Bytes::gib(1));
        assert!(Seconds::ZERO < small && small < large);
        // Host-resident data: the initial strategy pays a sync per chunk.
        let initial = checkpoint_cost(&cfg, &tier, Strategy::Initial, Bytes::gib(1));
        assert!(initial > large, "{initial} vs {large}");
        // Agreement with the Fti engine it is documented to mirror.
        let mut fti = Fti::new(cfg.clone(), 0);
        fti.protect_phantom(0, AddrSpace::Host, Bytes::gib(1))
            .unwrap();
        assert_eq!(
            fti.checkpoint_duration(&MemoryManager::new(), &tier, Strategy::Async),
            large
        );
        assert_eq!(
            fti.recover_duration(&MemoryManager::new(), &tier, Strategy::Initial),
            restart_cost(&cfg, &tier, Strategy::Initial, Bytes::gib(1))
        );
    }

    #[test]
    fn phantom_bytes_by_space() {
        let mut fti = Fti::new(FtiConfig::default(), 0);
        fti.protect_phantom(0, AddrSpace::Device(DeviceId(1)), Bytes::gib(1))
            .unwrap();
        fti.protect_phantom(1, AddrSpace::Unified, Bytes::gib(2))
            .unwrap();
        fti.protect_phantom(2, AddrSpace::Host, Bytes::gib(3))
            .unwrap();
        assert_eq!(
            fti.bytes_by_space(),
            (Bytes::gib(1), Bytes::gib(2), Bytes::gib(3))
        );
        assert_eq!(fti.protected_bytes(), Bytes::gib(6));
    }
}
