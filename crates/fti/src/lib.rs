//! # legato-fti
//!
//! Multi-level checkpoint/restart library modelled on FTI, extended for
//! transparent GPU/CPU checkpointing as in LEGaTO's middleware layer
//! (paper §IV, Listing 1).
//!
//! The developer-facing API mirrors the paper's listing: data is
//! *protected* by id ([`Fti::protect`], cf. `FTI_Protect`), and
//! [`Fti::snapshot`] (cf. `FTI_Snapshot`) takes a checkpoint when one is
//! due. A protected region may live in host memory, device (GPU) memory or
//! unified (UVM) memory — "in `FTI_Protect` the developer specifies a
//! single address … and the FTI runtime library will handle accordingly
//! each different address type."
//!
//! Four checkpoint [`level`]s are provided, following the original FTI
//! design (Bautista-Gomez et al., SC'11):
//!
//! | Level | Target                      | Survives                    |
//! |-------|-----------------------------|-----------------------------|
//! | L1    | node-local NVMe             | process crash               |
//! | L2    | partner-node copy           | single-node loss            |
//! | L3    | Reed–Solomon across group   | multi-node loss (≤ parity)  |
//! | L4    | parallel file system        | whole-system outage         |
//!
//! Two write strategies reproduce the §IV comparison: the **initial**
//! implementation (synchronous per-chunk staging through pageable memory,
//! chunk-synchronous writes) and the **async** implementation (pinned
//! staging, chunked pipeline overlapping the device→host copy with the
//! storage write) — the optimization the paper credits with a 10×
//! speedup.
//!
//! ## Example
//!
//! ```
//! use legato_fti::{CheckpointLevel, Fti, FtiConfig, Strategy};
//! use legato_hw::memory::{AddrSpace, MemoryManager};
//! use legato_hw::storage::{StorageDevice, StorageTier};
//! use legato_core::units::{Bytes, Seconds};
//!
//! # fn main() -> Result<(), legato_fti::FtiError> {
//! let mut mm = MemoryManager::new();
//! let grid = mm.alloc(AddrSpace::Unified, Bytes::mib(1)).unwrap();
//! mm.write(grid, 0, &[7u8; 1024]).unwrap();
//!
//! let mut fti = Fti::new(FtiConfig::default(), 0);
//! fti.protect(0, grid, &mm)?;
//!
//! let mut nvme = StorageDevice::new(StorageTier::local_nvme());
//! let report = fti.checkpoint(
//!     &mut mm, &mut nvme, CheckpointLevel::L1, Strategy::Async, Seconds::ZERO,
//! )?;
//! assert_eq!(report.bytes, Bytes::mib(1));
//!
//! // Corrupt, then recover.
//! mm.write(grid, 0, &[0u8; 1024]).unwrap();
//! fti.recover(&mut mm, &mut nvme, Strategy::Async, report.finish)?;
//! assert_eq!(mm.data(grid).unwrap()[0], 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod fti;
pub mod group;
pub mod heat2d;
pub mod level;
pub mod mtbf;
pub mod rs;

pub use config::FtiConfig;
pub use error::FtiError;
pub use fti::{checkpoint_cost, restart_cost, CheckpointReport, Fti, RecoverReport, Strategy};
pub use group::FtiGroup;
pub use level::CheckpointLevel;
pub use rs::ReedSolomon;
