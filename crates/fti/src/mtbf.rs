//! Checkpoint-interval and MTBF sustainability modelling.
//!
//! The paper closes §IV with: "for the same amount of application
//! overhead, the extended FTI version can sustain execution in systems
//! with 7 times smaller MTBF." This module provides the standard
//! first-order model behind such statements (Young's optimal interval and
//! Daly's overhead approximation) and a solver for the sustainable MTBF at
//! a fixed overhead budget.

use legato_core::units::Seconds;

/// Young's optimal checkpoint interval `τ = sqrt(2 δ M)` for checkpoint
/// cost `δ` and MTBF `M`.
///
/// # Panics
///
/// Panics if either argument is non-positive.
///
/// ```
/// use legato_fti::mtbf::young_interval;
/// use legato_core::units::Seconds;
///
/// let tau = young_interval(Seconds(10.0), Seconds(20_000.0));
/// assert!((tau.0 - 632.45).abs() < 0.1);
/// ```
#[must_use]
pub fn young_interval(ckpt: Seconds, mtbf: Seconds) -> Seconds {
    assert!(ckpt.0 > 0.0 && mtbf.0 > 0.0, "times must be positive");
    Seconds((2.0 * ckpt.0 * mtbf.0).sqrt())
}

/// First-order fraction of wall-clock time lost to fault tolerance when
/// checkpointing every `interval` seconds with checkpoint cost `ckpt`,
/// restart cost `restart`, on a machine with the given `mtbf`:
///
/// `overhead ≈ δ/τ + (τ/2 + R) / M`
///
/// (checkpoint bandwidth loss, plus expected rework and restart per
/// failure).
///
/// # Panics
///
/// Panics if any argument is non-positive.
#[must_use]
pub fn overhead_fraction(ckpt: Seconds, restart: Seconds, interval: Seconds, mtbf: Seconds) -> f64 {
    assert!(
        ckpt.0 > 0.0 && restart.0 >= 0.0 && interval.0 > 0.0 && mtbf.0 > 0.0,
        "times must be positive"
    );
    ckpt.0 / interval.0 + (interval.0 / 2.0 + restart.0) / mtbf.0
}

/// Overhead at the Young-optimal interval.
#[must_use]
pub fn optimal_overhead(ckpt: Seconds, restart: Seconds, mtbf: Seconds) -> f64 {
    overhead_fraction(ckpt, restart, young_interval(ckpt, mtbf), mtbf)
}

/// The smallest MTBF a system can have while keeping fault-tolerance
/// overhead at or below `budget` (a fraction in `(0, 1)`), assuming the
/// application checkpoints at the Young-optimal interval.
///
/// Solved by bisection on the monotone `optimal_overhead` curve. Returns
/// `None` if even an MTBF of ten years cannot meet the budget.
///
/// # Panics
///
/// Panics if `budget` is not in `(0, 1)` or costs are non-positive.
#[must_use]
pub fn sustainable_mtbf(ckpt: Seconds, restart: Seconds, budget: f64) -> Option<Seconds> {
    assert!(
        budget > 0.0 && budget < 1.0,
        "budget must be a fraction in (0, 1)"
    );
    assert!(ckpt.0 > 0.0 && restart.0 >= 0.0, "costs must be positive");
    let ten_years = 10.0 * 365.25 * 24.0 * 3600.0;
    if optimal_overhead(ckpt, restart, Seconds(ten_years)) > budget {
        return None;
    }
    // Overhead decreases as MTBF grows: bisect for the crossing point.
    let (mut lo, mut hi) = (1e-3, ten_years);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if optimal_overhead(ckpt, restart, Seconds(mid)) > budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(Seconds(hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_interval_formula() {
        let tau = young_interval(Seconds(50.0), Seconds(10_000.0));
        assert!((tau.0 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_decreases_with_mtbf() {
        let o_bad = optimal_overhead(Seconds(10.0), Seconds(5.0), Seconds(1_000.0));
        let o_good = optimal_overhead(Seconds(10.0), Seconds(5.0), Seconds(100_000.0));
        assert!(o_good < o_bad);
    }

    #[test]
    fn overhead_increases_with_ckpt_cost() {
        let fast = optimal_overhead(Seconds(5.0), Seconds(5.0), Seconds(10_000.0));
        let slow = optimal_overhead(Seconds(60.0), Seconds(30.0), Seconds(10_000.0));
        assert!(slow > fast);
    }

    #[test]
    fn sustainable_mtbf_meets_budget() {
        let m = sustainable_mtbf(Seconds(10.0), Seconds(7.0), 0.05).unwrap();
        let o = optimal_overhead(Seconds(10.0), Seconds(7.0), m);
        assert!(o <= 0.05 + 1e-6);
        // And just below it the budget is violated.
        let o_tight = optimal_overhead(Seconds(10.0), Seconds(7.0), Seconds(m.0 * 0.9));
        assert!(o_tight > 0.05);
    }

    #[test]
    fn faster_checkpoints_sustain_smaller_mtbf() {
        // The §IV claim: the optimized implementation (≈12× faster ckpt,
        // ≈5× faster recover) sustains systems with several-fold smaller
        // MTBF at the same overhead budget.
        let slow_ckpt = Seconds(60.0);
        let slow_rec = Seconds(36.0);
        let fast_ckpt = Seconds(60.0 / 12.05);
        let fast_rec = Seconds(36.0 / 5.13);
        let m_slow = sustainable_mtbf(slow_ckpt, slow_rec, 0.10).unwrap();
        let m_fast = sustainable_mtbf(fast_ckpt, fast_rec, 0.10).unwrap();
        let factor = m_slow.0 / m_fast.0;
        assert!(
            (5.0..13.0).contains(&factor),
            "expected roughly 7x (paper), got {factor:.2}"
        );
    }

    #[test]
    fn impossible_budget_returns_none() {
        // Checkpoint costs an hour; 0.01% overhead is unreachable.
        assert!(sustainable_mtbf(Seconds(3600.0), Seconds(3600.0), 0.0001).is_none());
    }

    #[test]
    #[should_panic(expected = "budget must be a fraction")]
    fn budget_validation() {
        let _ = sustainable_mtbf(Seconds(1.0), Seconds(1.0), 1.5);
    }
}
