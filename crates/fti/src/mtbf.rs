//! Checkpoint-interval and MTBF sustainability modelling.
//!
//! The paper closes §IV with: "for the same amount of application
//! overhead, the extended FTI version can sustain execution in systems
//! with 7 times smaller MTBF." This module provides the standard
//! first-order model behind such statements (Young's optimal interval and
//! Daly's refinement, plus the first-order overhead approximation) and a
//! solver for the sustainable MTBF at a fixed overhead budget.
//!
//! Every function validates its domain and returns
//! [`FtiError::InvalidParameter`] instead of panicking — the
//! checkpoint/restart execution engine in `legato-runtime` calls these
//! models mid-run, where a panic would take the whole simulation down
//! (mirroring the runtime's `Policy::weighted` → `InvalidWeight`
//! contract). Checkpoint and interval times must be strictly positive;
//! the restart cost may be zero (an in-memory restore is legitimately
//! free at this model's resolution).

use legato_core::units::Seconds;

use crate::error::FtiError;

/// Validate that `value` is finite and strictly positive.
fn positive(name: &'static str, value: f64) -> Result<(), FtiError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(FtiError::InvalidParameter { name, value })
    }
}

/// Validate that `value` is finite and non-negative.
fn non_negative(name: &'static str, value: f64) -> Result<(), FtiError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(FtiError::InvalidParameter { name, value })
    }
}

/// Young's optimal checkpoint interval `τ = sqrt(2 δ M)` for checkpoint
/// cost `δ` and MTBF `M`.
///
/// # Errors
///
/// [`FtiError::InvalidParameter`] if either argument is non-positive or
/// non-finite.
///
/// ```
/// use legato_fti::mtbf::young_interval;
/// use legato_core::units::Seconds;
///
/// let tau = young_interval(Seconds(10.0), Seconds(20_000.0)).unwrap();
/// assert!((tau.0 - 632.45).abs() < 0.1);
/// ```
pub fn young_interval(ckpt: Seconds, mtbf: Seconds) -> Result<Seconds, FtiError> {
    positive("ckpt", ckpt.0)?;
    positive("mtbf", mtbf.0)?;
    Ok(Seconds((2.0 * ckpt.0 * mtbf.0).sqrt()))
}

/// Daly's refinement of Young's interval,
/// `τ = sqrt(2 δ M) · [1 + ⅓·sqrt(δ/2M) + (δ/2M)/9] − δ` for `δ < 2M`,
/// falling back to `τ = M` when the checkpoint cost dominates the MTBF
/// (Daly 2006, eq. 37).
///
/// # Errors
///
/// [`FtiError::InvalidParameter`] if either argument is non-positive or
/// non-finite.
pub fn daly_interval(ckpt: Seconds, mtbf: Seconds) -> Result<Seconds, FtiError> {
    positive("ckpt", ckpt.0)?;
    positive("mtbf", mtbf.0)?;
    if ckpt.0 >= 2.0 * mtbf.0 {
        return Ok(mtbf);
    }
    let ratio = ckpt.0 / (2.0 * mtbf.0);
    let tau = (2.0 * ckpt.0 * mtbf.0).sqrt() * (1.0 + ratio.sqrt() / 3.0 + ratio / 9.0) - ckpt.0;
    Ok(Seconds(tau))
}

/// First-order fraction of wall-clock time lost to fault tolerance when
/// checkpointing every `interval` seconds with checkpoint cost `ckpt`,
/// restart cost `restart`, on a machine with the given `mtbf`:
///
/// `overhead ≈ δ/τ + (τ/2 + R) / M`
///
/// (checkpoint bandwidth loss, plus expected rework and restart per
/// failure).
///
/// # Errors
///
/// [`FtiError::InvalidParameter`] if `ckpt`, `interval` or `mtbf` is
/// non-positive, or `restart` is negative (a free restart is allowed —
/// the formula is well-defined at `R = 0`).
pub fn overhead_fraction(
    ckpt: Seconds,
    restart: Seconds,
    interval: Seconds,
    mtbf: Seconds,
) -> Result<f64, FtiError> {
    positive("ckpt", ckpt.0)?;
    non_negative("restart", restart.0)?;
    positive("interval", interval.0)?;
    positive("mtbf", mtbf.0)?;
    Ok(ckpt.0 / interval.0 + (interval.0 / 2.0 + restart.0) / mtbf.0)
}

/// Overhead at the Young-optimal interval.
///
/// # Errors
///
/// Same domain as [`overhead_fraction`].
pub fn optimal_overhead(ckpt: Seconds, restart: Seconds, mtbf: Seconds) -> Result<f64, FtiError> {
    overhead_fraction(ckpt, restart, young_interval(ckpt, mtbf)?, mtbf)
}

/// The smallest MTBF a system can have while keeping fault-tolerance
/// overhead at or below `budget` (a fraction in `(0, 1)`), assuming the
/// application checkpoints at the Young-optimal interval.
///
/// Solved by bisection on the monotone `optimal_overhead` curve. Returns
/// `Ok(None)` if even an MTBF of ten years cannot meet the budget.
///
/// # Errors
///
/// [`FtiError::InvalidParameter`] if `budget` is not in `(0, 1)`, `ckpt`
/// is non-positive, or `restart` is negative.
pub fn sustainable_mtbf(
    ckpt: Seconds,
    restart: Seconds,
    budget: f64,
) -> Result<Option<Seconds>, FtiError> {
    if !(budget.is_finite() && budget > 0.0 && budget < 1.0) {
        return Err(FtiError::InvalidParameter {
            name: "budget",
            value: budget,
        });
    }
    positive("ckpt", ckpt.0)?;
    non_negative("restart", restart.0)?;
    let ten_years = 10.0 * 365.25 * 24.0 * 3600.0;
    if optimal_overhead(ckpt, restart, Seconds(ten_years))? > budget {
        return Ok(None);
    }
    // Overhead decreases as MTBF grows: bisect for the crossing point.
    let (mut lo, mut hi) = (1e-3, ten_years);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if optimal_overhead(ckpt, restart, Seconds(mid))? > budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(Seconds(hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_interval_formula() {
        let tau = young_interval(Seconds(50.0), Seconds(10_000.0)).unwrap();
        assert!((tau.0 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn daly_interval_close_to_young_for_small_ckpt() {
        let young = young_interval(Seconds(10.0), Seconds(100_000.0)).unwrap();
        let daly = daly_interval(Seconds(10.0), Seconds(100_000.0)).unwrap();
        // The correction is small when δ ≪ M, and positive overall.
        assert!(daly.0 > 0.0);
        assert!((daly.0 - young.0).abs() / young.0 < 0.01);
    }

    #[test]
    fn daly_interval_clamps_when_ckpt_dominates() {
        assert_eq!(
            daly_interval(Seconds(100.0), Seconds(10.0)).unwrap(),
            Seconds(10.0)
        );
    }

    #[test]
    fn overhead_decreases_with_mtbf() {
        let o_bad = optimal_overhead(Seconds(10.0), Seconds(5.0), Seconds(1_000.0)).unwrap();
        let o_good = optimal_overhead(Seconds(10.0), Seconds(5.0), Seconds(100_000.0)).unwrap();
        assert!(o_good < o_bad);
    }

    #[test]
    fn overhead_increases_with_ckpt_cost() {
        let fast = optimal_overhead(Seconds(5.0), Seconds(5.0), Seconds(10_000.0)).unwrap();
        let slow = optimal_overhead(Seconds(60.0), Seconds(30.0), Seconds(10_000.0)).unwrap();
        assert!(slow > fast);
    }

    #[test]
    fn sustainable_mtbf_meets_budget() {
        let m = sustainable_mtbf(Seconds(10.0), Seconds(7.0), 0.05)
            .unwrap()
            .unwrap();
        let o = optimal_overhead(Seconds(10.0), Seconds(7.0), m).unwrap();
        assert!(o <= 0.05 + 1e-6);
        // And just below it the budget is violated.
        let o_tight = optimal_overhead(Seconds(10.0), Seconds(7.0), Seconds(m.0 * 0.9)).unwrap();
        assert!(o_tight > 0.05);
    }

    #[test]
    fn faster_checkpoints_sustain_smaller_mtbf() {
        // The §IV claim: the optimized implementation (≈12× faster ckpt,
        // ≈5× faster recover) sustains systems with several-fold smaller
        // MTBF at the same overhead budget.
        let slow_ckpt = Seconds(60.0);
        let slow_rec = Seconds(36.0);
        let fast_ckpt = Seconds(60.0 / 12.05);
        let fast_rec = Seconds(36.0 / 5.13);
        let m_slow = sustainable_mtbf(slow_ckpt, slow_rec, 0.10)
            .unwrap()
            .unwrap();
        let m_fast = sustainable_mtbf(fast_ckpt, fast_rec, 0.10)
            .unwrap()
            .unwrap();
        let factor = m_slow.0 / m_fast.0;
        assert!(
            (5.0..13.0).contains(&factor),
            "expected roughly 7x (paper), got {factor:.2}"
        );
    }

    #[test]
    fn impossible_budget_returns_none() {
        // Checkpoint costs an hour; 0.01% overhead is unreachable.
        assert_eq!(
            sustainable_mtbf(Seconds(3600.0), Seconds(3600.0), 0.0001).unwrap(),
            None
        );
    }

    /// The documented contract: checkpoint/interval/MTBF strictly
    /// positive, restart non-negative — `restart == 0` is *valid*, and
    /// bad values are errors naming the offending parameter, not panics.
    #[test]
    fn domain_errors_name_the_parameter() {
        assert!(overhead_fraction(
            Seconds(10.0),
            Seconds::ZERO,
            Seconds(100.0),
            Seconds(1000.0)
        )
        .is_ok());
        let err = |r: Result<f64, FtiError>| match r {
            Err(FtiError::InvalidParameter { name, .. }) => name,
            other => panic!("expected InvalidParameter, got {other:?}"),
        };
        assert_eq!(
            err(overhead_fraction(
                Seconds::ZERO,
                Seconds(1.0),
                Seconds(1.0),
                Seconds(1.0)
            )),
            "ckpt"
        );
        assert_eq!(
            err(overhead_fraction(
                Seconds(1.0),
                Seconds(-1.0),
                Seconds(1.0),
                Seconds(1.0)
            )),
            "restart"
        );
        assert_eq!(
            err(overhead_fraction(
                Seconds(1.0),
                Seconds(1.0),
                Seconds(f64::NAN),
                Seconds(1.0)
            )),
            "interval"
        );
        assert_eq!(
            err(overhead_fraction(
                Seconds(1.0),
                Seconds(1.0),
                Seconds(1.0),
                Seconds::ZERO
            )),
            "mtbf"
        );
        assert!(matches!(
            young_interval(Seconds(1.0), Seconds(f64::INFINITY)),
            Err(FtiError::InvalidParameter { name: "mtbf", .. })
        ));
    }

    #[test]
    fn budget_validation_is_an_error() {
        assert!(matches!(
            sustainable_mtbf(Seconds(1.0), Seconds(1.0), 1.5),
            Err(FtiError::InvalidParameter { name: "budget", .. })
        ));
        assert!(matches!(
            sustainable_mtbf(Seconds(1.0), Seconds(1.0), 0.0),
            Err(FtiError::InvalidParameter { name: "budget", .. })
        ));
    }
}
