//! Heat2D: the distributed stencil application used to evaluate the
//! GPU/CPU checkpointing in Fig. 6.
//!
//! A Jacobi iteration on a rectangular plate with fixed temperatures on
//! the top and bottom edges and insulated side walls. The global grid is
//! row-partitioned across ranks; each step exchanges one halo row with
//! each neighbour — over a
//! [`legato_hw::comm::Endpoint`] when run with real ranks, or internally
//! when `size == 1`.
//!
//! The steady state of this configuration is the linear temperature
//! profile between the two plates, which gives the tests an exact answer
//! to converge to.

use legato_hw::comm::Endpoint;
use legato_hw::memory::{MemoryManager, RegionHandle};

use crate::error::FtiError;

/// Row-partitioned Jacobi heat solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Heat2d {
    global_rows: usize,
    cols: usize,
    rank: usize,
    size: usize,
    local_rows: usize,
    /// `(local_rows + 2) × cols`, including one halo row above and below.
    grid: Vec<f64>,
    next: Vec<f64>,
    top_temp: f64,
    bottom_temp: f64,
    iterations: u64,
}

impl Heat2d {
    /// Create the local partition of a `global_rows × cols` plate for
    /// `rank` of `size`, with top edge held at `top_temp` and bottom edge
    /// at `bottom_temp`. Interior starts at the bottom temperature.
    ///
    /// # Panics
    ///
    /// Panics if the grid is degenerate, `rank ≥ size`, or `global_rows`
    /// is not divisible by `size`.
    #[must_use]
    pub fn new(
        global_rows: usize,
        cols: usize,
        rank: usize,
        size: usize,
        top_temp: f64,
        bottom_temp: f64,
    ) -> Self {
        assert!(global_rows >= 2 && cols >= 1, "grid too small");
        assert!(size >= 1 && rank < size, "bad rank/size");
        assert!(
            global_rows.is_multiple_of(size),
            "global rows must divide evenly across ranks"
        );
        let local_rows = global_rows / size;
        let mut h = Heat2d {
            global_rows,
            cols,
            rank,
            size,
            local_rows,
            grid: vec![bottom_temp; (local_rows + 2) * cols],
            next: vec![bottom_temp; (local_rows + 2) * cols],
            top_temp,
            bottom_temp,
            iterations: 0,
        };
        h.apply_global_boundaries();
        h
    }

    /// Number of Jacobi iterations performed.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Local interior rows (excluding halos).
    #[must_use]
    pub fn local_rows(&self) -> usize {
        self.local_rows
    }

    /// Columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Temperature at local interior cell `(row, col)` (0-based, halos
    /// excluded).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.local_rows && col < self.cols,
            "index out of range"
        );
        self.grid[(row + 1) * self.cols + col]
    }

    /// One Jacobi step. `endpoint` carries the halo exchange when
    /// `size > 1`; pass `None` for single-rank runs.
    ///
    /// # Errors
    ///
    /// [`FtiError::Memory`] when the halo exchange fails (peer hung up).
    ///
    /// # Panics
    ///
    /// Panics if `size > 1` and no endpoint is supplied, or the endpoint's
    /// rank/size disagree with the solver's.
    pub fn step(&mut self, endpoint: Option<&Endpoint>) -> Result<(), FtiError> {
        self.exchange_halos(endpoint)?;
        let c = self.cols;
        for row in 1..=self.local_rows {
            for col in 0..c {
                // Insulated side walls: clamp column neighbours.
                let left = self.grid[row * c + col.saturating_sub(1)];
                let right = self.grid[row * c + (col + 1).min(c - 1)];
                let up = self.grid[(row - 1) * c + col];
                let down = self.grid[(row + 1) * c + col];
                self.next[row * c + col] = 0.25 * (left + right + up + down);
            }
        }
        std::mem::swap(&mut self.grid, &mut self.next);
        self.apply_global_boundaries();
        self.iterations += 1;
        Ok(())
    }

    /// Run `steps` Jacobi iterations.
    ///
    /// # Errors
    ///
    /// Propagates [`Heat2d::step`] errors.
    pub fn run(&mut self, steps: usize, endpoint: Option<&Endpoint>) -> Result<(), FtiError> {
        for _ in 0..steps {
            self.step(endpoint)?;
        }
        Ok(())
    }

    /// Maximum absolute deviation from the analytic steady state (the
    /// linear profile between the plate temperatures).
    #[must_use]
    pub fn steady_state_error(&self) -> f64 {
        let mut worst = 0.0_f64;
        for row in 0..self.local_rows {
            let global_row = self.rank * self.local_rows + row;
            // The plates sit at the halo positions −1 and `global_rows`;
            // the steady profile is linear between them.
            let frac = (global_row + 1) as f64 / (self.global_rows + 1) as f64;
            let expect = self.top_temp + (self.bottom_temp - self.top_temp) * frac;
            for col in 0..self.cols {
                worst = worst.max((self.at(row, col) - expect).abs());
            }
        }
        worst
    }

    /// Serialize the interior (checkpointable state) to little-endian
    /// bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.local_rows * self.cols * 8 + 8);
        out.extend(self.iterations.to_le_bytes());
        for row in 0..self.local_rows {
            for col in 0..self.cols {
                out.extend(self.at(row, col).to_le_bytes());
            }
        }
        out
    }

    /// Restore interior state from [`Heat2d::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`FtiError::LayoutMismatch`] if the byte length does not match this
    /// solver's geometry.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), FtiError> {
        let expect = self.local_rows * self.cols * 8 + 8;
        if bytes.len() != expect {
            return Err(FtiError::LayoutMismatch(format!(
                "expected {expect} bytes, got {}",
                bytes.len()
            )));
        }
        self.iterations = u64::from_le_bytes(bytes[..8].try_into().expect("8"));
        let mut pos = 8;
        for row in 1..=self.local_rows {
            for col in 0..self.cols {
                let v = f64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
                self.grid[row * self.cols + col] = v;
                pos += 8;
            }
        }
        self.apply_global_boundaries();
        Ok(())
    }

    /// Copy the checkpointable state into a protected memory region
    /// (bridging the solver to the FTI `protect`/`snapshot` flow).
    ///
    /// # Errors
    ///
    /// [`FtiError::Memory`] when the region is too small or stale.
    pub fn save_into(&self, mm: &mut MemoryManager, region: RegionHandle) -> Result<(), FtiError> {
        let bytes = self.to_bytes();
        mm.write(region, 0, &bytes)?;
        Ok(())
    }

    /// Restore the checkpointable state from a protected memory region.
    ///
    /// # Errors
    ///
    /// [`FtiError::Memory`] on substrate failures;
    /// [`FtiError::LayoutMismatch`] on geometry mismatch.
    pub fn load_from(&mut self, mm: &MemoryManager, region: RegionHandle) -> Result<(), FtiError> {
        let need = self.local_rows * self.cols * 8 + 8;
        let data = mm.data(region)?;
        if data.len() < need {
            return Err(FtiError::LayoutMismatch(format!(
                "region holds {} bytes, need {need}",
                data.len()
            )));
        }
        let bytes = data[..need].to_vec();
        self.restore_bytes(&bytes)
    }

    /// Bytes of checkpointable state.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        self.local_rows * self.cols * 8 + 8
    }

    fn exchange_halos(&mut self, endpoint: Option<&Endpoint>) -> Result<(), FtiError> {
        let c = self.cols;
        if self.size == 1 {
            return Ok(());
        }
        let ep = endpoint.expect("multi-rank Heat2d requires an endpoint");
        assert_eq!(ep.rank(), self.rank, "endpoint rank mismatch");
        assert_eq!(ep.size(), self.size, "endpoint size mismatch");
        let up = self.rank.checked_sub(1);
        let down = if self.rank + 1 < self.size {
            Some(self.rank + 1)
        } else {
            None
        };
        let encode = |row: usize, grid: &[f64]| -> Vec<u8> {
            grid[row * c..(row + 1) * c]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect()
        };
        if let Some(up) = up {
            ep.send(up, encode(1, &self.grid)).map_err(hw_err)?;
        }
        if let Some(down) = down {
            ep.send(down, encode(self.local_rows, &self.grid))
                .map_err(hw_err)?;
        }
        if let Some(up) = up {
            let bytes = ep.recv(up).map_err(hw_err)?;
            self.decode_into(0, &bytes)?;
        }
        if let Some(down) = down {
            let bytes = ep.recv(down).map_err(hw_err)?;
            self.decode_into(self.local_rows + 1, &bytes)?;
        }
        Ok(())
    }

    fn decode_into(&mut self, row: usize, bytes: &[u8]) -> Result<(), FtiError> {
        if bytes.len() != self.cols * 8 {
            return Err(FtiError::LayoutMismatch("halo row size mismatch".into()));
        }
        for (col, chunk) in bytes.chunks_exact(8).enumerate() {
            self.grid[row * self.cols + col] = f64::from_le_bytes(chunk.try_into().expect("8"));
        }
        Ok(())
    }

    fn apply_global_boundaries(&mut self) {
        let c = self.cols;
        if self.rank == 0 {
            // Global top edge: halo row 0 mirrors the fixed plate; also pin
            // the first interior row's upper neighbour.
            for col in 0..c {
                self.grid[col] = self.top_temp;
            }
        }
        if self.rank == self.size - 1 {
            let last = self.local_rows + 1;
            for col in 0..c {
                self.grid[last * c + col] = self.bottom_temp;
            }
        }
    }
}

fn hw_err(e: legato_hw::HwError) -> FtiError {
    FtiError::Memory(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use legato_hw::comm::Group;
    use std::thread;

    #[test]
    fn converges_to_linear_profile() {
        let mut h = Heat2d::new(16, 8, 0, 1, 100.0, 0.0);
        h.run(4000, None).unwrap();
        assert!(
            h.steady_state_error() < 0.5,
            "error {}",
            h.steady_state_error()
        );
    }

    #[test]
    fn interior_warms_from_top() {
        let mut h = Heat2d::new(8, 4, 0, 1, 100.0, 0.0);
        h.run(50, None).unwrap();
        // Monotone-ish decay from the hot plate.
        assert!(h.at(0, 0) > h.at(4, 0));
        assert!(h.at(4, 0) > h.at(7, 0) - 1e-12);
    }

    #[test]
    fn multi_rank_matches_single_rank() {
        const ROWS: usize = 24;
        const COLS: usize = 6;
        const STEPS: usize = 200;
        // Reference: single rank.
        let mut reference = Heat2d::new(ROWS, COLS, 0, 1, 100.0, 0.0);
        reference.run(STEPS, None).unwrap();

        // Distributed: 4 ranks over threads.
        let endpoints = Group::endpoints(4);
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let mut h = Heat2d::new(ROWS, COLS, ep.rank(), ep.size(), 100.0, 0.0);
                    h.run(STEPS, Some(&ep)).unwrap();
                    (ep.rank(), h)
                })
            })
            .collect();
        for handle in handles {
            let (rank, h) = handle.join().unwrap();
            for row in 0..h.local_rows() {
                for col in 0..COLS {
                    let global_row = rank * h.local_rows() + row;
                    let want = reference.at(global_row, col);
                    let got = h.at(row, col);
                    assert!(
                        (want - got).abs() < 1e-12,
                        "rank {rank} cell ({row},{col}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn checkpoint_restore_resumes_exactly() {
        let mut a = Heat2d::new(16, 8, 0, 1, 100.0, 0.0);
        a.run(100, None).unwrap();
        let saved = a.to_bytes();
        a.run(100, None).unwrap();
        let final_state = a.to_bytes();

        // Restore the snapshot into a fresh solver and replay.
        let mut b = Heat2d::new(16, 8, 0, 1, 100.0, 0.0);
        b.restore_bytes(&saved).unwrap();
        assert_eq!(b.iterations(), 100);
        b.run(100, None).unwrap();
        assert_eq!(b.to_bytes(), final_state);
    }

    #[test]
    fn restore_rejects_wrong_geometry() {
        let a = Heat2d::new(16, 8, 0, 1, 100.0, 0.0);
        let mut b = Heat2d::new(16, 4, 0, 1, 100.0, 0.0);
        assert!(matches!(
            b.restore_bytes(&a.to_bytes()),
            Err(FtiError::LayoutMismatch(_))
        ));
    }

    #[test]
    fn save_load_through_memory_manager() {
        use legato_core::units::Bytes;
        use legato_hw::memory::AddrSpace;

        let mut mm = MemoryManager::new();
        let mut h = Heat2d::new(8, 4, 0, 1, 50.0, 0.0);
        h.run(20, None).unwrap();
        let region = mm
            .alloc(AddrSpace::Host, Bytes(h.state_bytes() as u64))
            .unwrap();
        h.save_into(&mut mm, region).unwrap();
        let snapshot = h.to_bytes();
        h.run(20, None).unwrap();
        h.load_from(&mm, region).unwrap();
        assert_eq!(h.to_bytes(), snapshot);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_partition_rejected() {
        let _ = Heat2d::new(10, 4, 0, 3, 1.0, 0.0);
    }

    #[test]
    fn state_bytes_accounts_header() {
        let h = Heat2d::new(8, 4, 0, 1, 1.0, 0.0);
        assert_eq!(h.state_bytes(), 8 * 4 * 8 + 8);
        assert_eq!(h.to_bytes().len(), h.state_bytes());
    }
}
