//! Error type for the checkpoint library.

use std::error::Error;
use std::fmt;

use crate::level::CheckpointLevel;

/// Errors produced by the FTI-like checkpoint library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FtiError {
    /// A protection id was registered twice.
    DuplicateId(u32),
    /// A model parameter was outside its documented domain (e.g. a
    /// non-positive checkpoint time handed to the MTBF interval model).
    /// The engine call-path reports this instead of panicking, mirroring
    /// the runtime's `InvalidWeight`.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Reed–Solomon shards that must be equal-length were not.
    ShardLengthMismatch {
        /// Length of the first shard examined.
        expected: usize,
        /// The first disagreeing length.
        got: usize,
    },
    /// A recovery was requested but no checkpoint exists at any level.
    NoCheckpoint,
    /// A checkpoint at the given level is missing or incomplete for a rank.
    MissingCheckpoint {
        /// The level that was probed.
        level: CheckpointLevel,
        /// The rank whose data is missing.
        rank: usize,
    },
    /// Reed–Solomon reconstruction failed (too many lost shards).
    TooManyErasures {
        /// Shards present.
        present: usize,
        /// Shards required.
        required: usize,
    },
    /// A stored checkpoint disagrees with the protected region layout.
    LayoutMismatch(String),
    /// The underlying memory substrate rejected an operation.
    Memory(String),
}

impl fmt::Display for FtiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtiError::DuplicateId(id) => write!(f, "protection id {id} already registered"),
            FtiError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` is outside its domain: {value}")
            }
            FtiError::ShardLengthMismatch { expected, got } => write!(
                f,
                "shards must have equal length, found both {expected} and {got} bytes"
            ),
            FtiError::NoCheckpoint => write!(f, "no checkpoint available for recovery"),
            FtiError::MissingCheckpoint { level, rank } => {
                write!(f, "no {level} checkpoint for rank {rank}")
            }
            FtiError::TooManyErasures { present, required } => write!(
                f,
                "reed-solomon reconstruction needs {required} shards, only {present} present"
            ),
            FtiError::LayoutMismatch(msg) => write!(f, "checkpoint layout mismatch: {msg}"),
            FtiError::Memory(msg) => write!(f, "memory substrate error: {msg}"),
        }
    }
}

impl Error for FtiError {}

impl From<legato_hw::HwError> for FtiError {
    fn from(e: legato_hw::HwError) -> Self {
        FtiError::Memory(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(FtiError::DuplicateId(3).to_string().contains("3"));
        let e = FtiError::InvalidParameter {
            name: "mtbf",
            value: -1.0,
        };
        assert!(e.to_string().contains("mtbf") && e.to_string().contains("-1"));
        let e = FtiError::ShardLengthMismatch {
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("4") && e.to_string().contains("5"));
        assert!(FtiError::NoCheckpoint.to_string().contains("no checkpoint"));
        assert!(FtiError::TooManyErasures {
            present: 2,
            required: 4
        }
        .to_string()
        .contains("reed-solomon"));
    }

    #[test]
    fn from_hw_error() {
        let e: FtiError = legato_hw::HwError::UnknownRegion(9).into();
        assert!(matches!(e, FtiError::Memory(_)));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<FtiError>();
    }
}
