//! Multi-process coordination: partner copies, erasure coding, node
//! failure and multi-level recovery.
//!
//! An [`FtiGroup`] owns one [`Fti`] engine, one [`MemoryManager`] and a
//! share of a node-local NVMe per rank, mirroring the Fig. 6 deployment
//! ("in each node we execute 4 processes, one per GPU device"). It adds
//! what single-process engines cannot do alone:
//!
//! * **L2** — after the local checkpoint, each rank's image is copied to a
//!   partner node over the compute network;
//! * **L3** — the rank images form the data shards of a Reed–Solomon code;
//!   parity shards are distributed round-robin across nodes;
//! * **L4** — images are written to a shared parallel file system, whose
//!   single device serializes cluster-wide traffic (the reason L4 is slow
//!   and L1 is flat in node count);
//! * **failure injection** — [`FtiGroup::fail_node`] destroys everything
//!   hosted on a node; [`FtiGroup::recover_all`] then restores each rank
//!   from the cheapest level that survived.

use legato_core::units::{Bytes, BytesPerSec, Seconds};
use legato_hw::memory::MemoryManager;
use legato_hw::storage::{StorageDevice, StorageTier, WriteMode};
use serde::{Deserialize, Serialize};

use crate::config::FtiConfig;
use crate::error::FtiError;
use crate::fti::{CheckpointReport, Fti, StoredCheckpoint, Strategy};
use crate::level::CheckpointLevel;
use crate::rs::ReedSolomon;

/// Throughput of the Reed–Solomon encoder per rank (XOR-heavy table
/// lookups; measured orders for software GF(256) coders).
const RS_ENCODE_BW: BytesPerSec = BytesPerSec(1.4e9);

/// Outcome of a group checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupCheckpointReport {
    /// Level taken.
    pub level: CheckpointLevel,
    /// Per-rank reports.
    pub ranks: Vec<CheckpointReport>,
    /// Wall-clock duration: latest finish minus the common start.
    pub wall: Seconds,
}

/// Outcome of a group recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupRecoverReport {
    /// Level each rank recovered from.
    pub levels: Vec<CheckpointLevel>,
    /// Wall-clock duration.
    pub wall: Seconds,
}

/// A simulated multi-node FTI deployment.
pub struct FtiGroup {
    config: FtiConfig,
    engines: Vec<Fti>,
    memories: Vec<MemoryManager>,
    /// One NVMe per node, shared by the node's ranks.
    node_storage: Vec<StorageDevice>,
    /// One partner-memory store per node (L2 target).
    partner_storage: Vec<StorageDevice>,
    /// The shared parallel file system (L4 target).
    pfs: StorageDevice,
    node_alive: Vec<bool>,
    /// L2: checkpoint of rank `r`, physically hosted on `partner_node(node_of(r))`.
    l2_store: Vec<Option<StoredCheckpoint>>,
    /// L3 parity shards (index p hosted on node `p % n_nodes`).
    l3_parity: Vec<Option<Vec<u8>>>,
    /// L3 metadata: serialized shard length (uniform) and per-rank real
    /// lengths, kept replicated (survives node loss).
    l3_shard_len: usize,
    l3_versions: Vec<u64>,
    /// L4 store on the PFS.
    l4_store: Vec<Option<StoredCheckpoint>>,
}

impl std::fmt::Debug for FtiGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FtiGroup")
            .field("ranks", &self.engines.len())
            .field("nodes", &self.node_storage.len())
            .field("alive", &self.node_alive)
            .finish()
    }
}

impl FtiGroup {
    /// Create a deployment of `n_ranks` ranks, `config.procs_per_node`
    /// per node.
    ///
    /// # Panics
    ///
    /// Panics if `n_ranks` is zero or not a multiple of
    /// `config.procs_per_node`.
    #[must_use]
    pub fn new(config: FtiConfig, n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        assert!(
            n_ranks.is_multiple_of(config.procs_per_node),
            "ranks must fill whole nodes"
        );
        let n_nodes = n_ranks / config.procs_per_node;
        FtiGroup {
            engines: (0..n_ranks).map(|r| Fti::new(config.clone(), r)).collect(),
            memories: (0..n_ranks).map(|_| MemoryManager::new()).collect(),
            node_storage: (0..n_nodes)
                .map(|_| StorageDevice::new(StorageTier::local_nvme()))
                .collect(),
            partner_storage: (0..n_nodes)
                .map(|_| StorageDevice::new(StorageTier::partner_memory()))
                .collect(),
            pfs: StorageDevice::new(StorageTier::parallel_fs()),
            node_alive: vec![true; n_nodes],
            l2_store: vec![None; n_ranks],
            l3_parity: vec![None; config.parity],
            l3_shard_len: 0,
            l3_versions: vec![0; n_ranks],
            l4_store: vec![None; n_ranks],
            config,
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.engines.len()
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.node_storage.len()
    }

    /// The node hosting `rank`.
    #[must_use]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.config.procs_per_node
    }

    /// The partner node of `node` (next node, wrapping).
    #[must_use]
    pub fn partner_node(&self, node: usize) -> usize {
        (node + 1) % self.nodes()
    }

    /// The node hosting L3 parity shard `p`: shards are placed from the
    /// last node backwards so that losing low-numbered (data-heavy) nodes
    /// does not also take parity with it.
    #[must_use]
    pub fn parity_host(&self, p: usize) -> usize {
        self.nodes() - 1 - (p % self.nodes())
    }

    /// Mutable access to a rank's memory manager (for allocating and
    /// writing application regions).
    pub fn memory_mut(&mut self, rank: usize) -> &mut MemoryManager {
        &mut self.memories[rank]
    }

    /// Mutable access to a rank's engine (for `protect` calls).
    pub fn engine_mut(&mut self, rank: usize) -> &mut Fti {
        &mut self.engines[rank]
    }

    /// Shared access to a rank's engine.
    #[must_use]
    pub fn engine(&self, rank: usize) -> &Fti {
        &self.engines[rank]
    }

    /// Shared access to a rank's memory manager.
    #[must_use]
    pub fn memory(&self, rank: usize) -> &MemoryManager {
        &self.memories[rank]
    }

    /// Checkpoint every rank at `level` with `strategy`, all starting at
    /// `now`. Ranks on the same node contend for its NVMe; L4 ranks
    /// contend for the single PFS.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; L3 requires more ranks than parity.
    pub fn checkpoint_all(
        &mut self,
        level: CheckpointLevel,
        strategy: Strategy,
        now: Seconds,
    ) -> Result<GroupCheckpointReport, FtiError> {
        let n = self.ranks();
        let mut reports = Vec::with_capacity(n);
        // Phase 1: every level starts with a local checkpoint.
        for rank in 0..n {
            let node = self.node_of(rank);
            let report = self.engines[rank].checkpoint(
                &mut self.memories[rank],
                &mut self.node_storage[node],
                level,
                strategy,
                now,
            )?;
            reports.push(report);
        }
        let local_done = reports
            .iter()
            .map(|r| r.finish)
            .fold(Seconds::ZERO, Seconds::max);

        // Phase 2: level-specific replication.
        let mut finish = local_done;
        match level {
            CheckpointLevel::L1 => {}
            CheckpointLevel::L2 => {
                let network = BytesPerSec(5.0e9); // compute network, 40 GbE
                for (rank, report) in reports.iter().enumerate() {
                    let ckpt = self.engines[rank]
                        .local_checkpoint()
                        .cloned()
                        .ok_or(FtiError::NoCheckpoint)?;
                    let host = self.partner_node(self.node_of(rank));
                    let xfer = ckpt.bytes.time_at(network);
                    let (_s, f) = self.partner_storage[host].write(
                        report.finish + xfer,
                        ckpt.bytes,
                        WriteMode::Streaming,
                    );
                    finish = finish.max(f);
                    self.l2_store[rank] = Some(ckpt);
                }
            }
            CheckpointLevel::L3 => {
                finish = finish.max(self.encode_l3(&reports)?);
            }
            CheckpointLevel::L4 => {
                for (rank, report) in reports.iter().enumerate() {
                    let ckpt = self.engines[rank]
                        .local_checkpoint()
                        .cloned()
                        .ok_or(FtiError::NoCheckpoint)?;
                    let (_s, f) = self
                        .pfs
                        .write(report.finish, ckpt.bytes, WriteMode::Streaming);
                    finish = finish.max(f);
                    self.l4_store[rank] = Some(ckpt);
                }
            }
        }
        Ok(GroupCheckpointReport {
            level,
            ranks: reports,
            wall: finish - now,
        })
    }

    /// Destroy a node: its ranks' local checkpoints, every L2 image it
    /// hosted for other ranks, and any L3 parity shard it held.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn fail_node(&mut self, node: usize) {
        assert!(node < self.nodes(), "node {node} out of range");
        self.node_alive[node] = false;
        self.node_storage[node].reset();
        self.partner_storage[node].reset();
        for rank in 0..self.ranks() {
            if self.node_of(rank) == node {
                self.engines[rank].drop_local_checkpoint();
            }
            // L2 image of `rank` is hosted on partner_node(node_of(rank)).
            if self.partner_node(self.node_of(rank)) == node {
                self.l2_store[rank] = None;
            }
        }
        let n_nodes = self.node_alive.len();
        for (p, shard) in self.l3_parity.iter_mut().enumerate() {
            if n_nodes - 1 - (p % n_nodes) == node {
                *shard = None;
            }
        }
    }

    /// Bring a failed node back (empty storage).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn restart_node(&mut self, node: usize) {
        assert!(node < self.nodes(), "node {node} out of range");
        self.node_alive[node] = true;
    }

    /// Recover every rank from the cheapest surviving level, restoring
    /// protected region contents where real data was checkpointed.
    ///
    /// # Errors
    ///
    /// [`FtiError::MissingCheckpoint`] when some rank has no surviving
    /// checkpoint at any level.
    pub fn recover_all(
        &mut self,
        strategy: Strategy,
        now: Seconds,
    ) -> Result<GroupRecoverReport, FtiError> {
        let n = self.ranks();
        // First pass: decide per-rank recovery level.
        let mut levels = Vec::with_capacity(n);
        for rank in 0..n {
            let level = if self.engines[rank].has_local_checkpoint() {
                CheckpointLevel::L1
            } else if self.l2_store[rank].is_some() {
                CheckpointLevel::L2
            } else if self.l3_available(rank) {
                CheckpointLevel::L3
            } else if self.l4_store[rank].is_some() {
                CheckpointLevel::L4
            } else {
                return Err(FtiError::MissingCheckpoint {
                    level: CheckpointLevel::L4,
                    rank,
                });
            };
            levels.push(level);
        }
        // Second pass: perform recoveries and accumulate timing.
        let mut finish = now;
        for (rank, &level) in levels.iter().enumerate() {
            let f = match level {
                CheckpointLevel::L1 => {
                    let node = self.node_of(rank);
                    let rep = self.engines[rank].recover(
                        &mut self.memories[rank],
                        &mut self.node_storage[node],
                        strategy,
                        now,
                    )?;
                    rep.finish
                }
                CheckpointLevel::L2 => {
                    let ckpt = self.l2_store[rank].clone().expect("checked");
                    let host = self.partner_node(self.node_of(rank));
                    let network = BytesPerSec(5.0e9);
                    let (_s, read_done) =
                        self.partner_storage[host].read(now, ckpt.bytes, WriteMode::Streaming);
                    let f = read_done + ckpt.bytes.time_at(network);
                    self.engines[rank].restore_blobs(&mut self.memories[rank], &ckpt)?;
                    self.engines[rank].install_checkpoint(ckpt);
                    f
                }
                CheckpointLevel::L3 => self.reconstruct_l3(rank, now)?,
                CheckpointLevel::L4 => {
                    let ckpt = self.l4_store[rank].clone().expect("checked");
                    let (_s, f) = self.pfs.read(now, ckpt.bytes, WriteMode::Streaming);
                    self.engines[rank].restore_blobs(&mut self.memories[rank], &ckpt)?;
                    self.engines[rank].install_checkpoint(ckpt);
                    f
                }
            };
            finish = finish.max(f);
        }
        Ok(GroupRecoverReport {
            levels,
            wall: finish - now,
        })
    }

    /// Whether rank `rank`'s image is reconstructible from the L3 code.
    fn l3_available(&self, rank: usize) -> bool {
        if self.l3_versions[rank] == 0 {
            return false;
        }
        let survivors = (0..self.ranks())
            .filter(|&r| self.engines[r].has_local_checkpoint() && self.l3_versions[r] > 0)
            .count()
            + self.l3_parity.iter().filter(|p| p.is_some()).count();
        survivors >= self.ranks()
    }

    /// Encode the L3 parity shards from every rank's serialized image.
    fn encode_l3(&mut self, reports: &[CheckpointReport]) -> Result<Seconds, FtiError> {
        let n = self.ranks();
        if n <= self.config.parity {
            return Err(FtiError::LayoutMismatch(format!(
                "L3 needs more ranks ({n}) than parity shards ({})",
                self.config.parity
            )));
        }
        let rs = ReedSolomon::new(n, self.config.parity)?;
        // Serialize each rank's image and pad to uniform shard length.
        let mut serialized: Vec<Vec<u8>> = (0..n)
            .map(|r| {
                self.engines[r]
                    .local_checkpoint()
                    .map(serialize_checkpoint)
                    .unwrap_or_default()
            })
            .collect();
        let max_len = serialized.iter().map(Vec::len).max().unwrap_or(0);
        for s in &mut serialized {
            s.resize(max_len, 0);
        }
        self.l3_shard_len = max_len;
        let parity = rs.encode(&serialized)?;
        for (p, shard) in parity.into_iter().enumerate() {
            self.l3_parity[p] = Some(shard);
        }
        for (r, v) in self.l3_versions.iter_mut().enumerate() {
            *v = self.engines[r].local_checkpoint().map_or(0, |c| c.version);
        }
        // Timing: encoding at RS bandwidth over each rank's image (ranks
        // encode their contribution concurrently), one network exchange of
        // the image, and parity writes on the hosting nodes.
        let per_rank_bytes = Bytes(max_len as u64);
        let encode = per_rank_bytes.time_at(RS_ENCODE_BW);
        let network = per_rank_bytes.time_at(BytesPerSec(5.0e9));
        let local_done = reports
            .iter()
            .map(|r| r.finish)
            .fold(Seconds::ZERO, Seconds::max);
        let mut finish = local_done + encode + network;
        for p in 0..self.config.parity {
            let node = self.parity_host(p);
            let (_s, f) = self.node_storage[node].write(
                local_done + encode + network,
                per_rank_bytes,
                WriteMode::Streaming,
            );
            finish = finish.max(f);
        }
        Ok(finish)
    }

    /// Rebuild rank `rank`'s image from surviving shards, restore it, and
    /// return the completion time.
    fn reconstruct_l3(&mut self, rank: usize, now: Seconds) -> Result<Seconds, FtiError> {
        let n = self.ranks();
        let rs = ReedSolomon::new(n, self.config.parity)?;
        let mut shards: Vec<Option<Vec<u8>>> = (0..n)
            .map(|r| {
                self.engines[r].local_checkpoint().map(|c| {
                    let mut s = serialize_checkpoint(c);
                    s.resize(self.l3_shard_len, 0);
                    s
                })
            })
            .collect();
        shards.extend(self.l3_parity.iter().cloned());
        rs.reconstruct(&mut shards)?;
        let bytes = shards[rank].as_ref().expect("reconstructed").clone();
        let ckpt = deserialize_checkpoint(&bytes, self.l3_versions[rank])?;
        self.engines[rank].restore_blobs(&mut self.memories[rank], &ckpt)?;
        self.engines[rank].install_checkpoint(ckpt);
        // Timing: fetch k surviving shards over the network (pipelined,
        // bounded by the slowest), decode at RS bandwidth, then push the
        // rebuilt image to the rank.
        let shard_bytes = Bytes(self.l3_shard_len as u64);
        let network = shard_bytes.time_at(BytesPerSec(5.0e9));
        let decode = (shard_bytes * n as u64).time_at(RS_ENCODE_BW);
        Ok(now + network * 2.0 + decode)
    }
}

/// Serialize a checkpoint's blobs: `[u32 id][u64 len][bytes…]*`.
fn serialize_checkpoint(c: &StoredCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend((c.blobs.len() as u32).to_le_bytes());
    for (id, bytes) in &c.blobs {
        out.extend(id.to_le_bytes());
        out.extend((bytes.len() as u64).to_le_bytes());
        out.extend(bytes.iter());
    }
    // Layout footer so phantom-only checkpoints round-trip too.
    out.extend((c.layout.len() as u32).to_le_bytes());
    for (id, size) in &c.layout {
        out.extend(id.to_le_bytes());
        out.extend(size.to_le_bytes());
    }
    out.extend(c.bytes.as_u64().to_le_bytes());
    out
}

/// Inverse of [`serialize_checkpoint`]; ignores zero padding.
fn deserialize_checkpoint(bytes: &[u8], version: u64) -> Result<StoredCheckpoint, FtiError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], FtiError> {
        let s = bytes
            .get(*pos..*pos + n)
            .ok_or_else(|| FtiError::LayoutMismatch("truncated shard".into()))?;
        *pos += n;
        Ok(s)
    };
    let n_blobs = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
    let mut blobs = Vec::with_capacity(n_blobs);
    for _ in 0..n_blobs {
        let id = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
        blobs.push((id, take(&mut pos, len)?.to_vec()));
    }
    let n_layout = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
    let mut layout = Vec::with_capacity(n_layout);
    for _ in 0..n_layout {
        let id = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        let size = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        layout.push((id, size));
    }
    let total = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
    Ok(StoredCheckpoint {
        version,
        blobs,
        layout,
        bytes: Bytes(total),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use legato_hw::memory::AddrSpace;

    /// A group where every rank protects one real host region with
    /// distinctive content.
    fn real_group(ranks: usize) -> FtiGroup {
        let cfg = FtiConfig::builder().procs_per_node(2).parity(2).build();
        let mut g = FtiGroup::new(cfg, ranks);
        for r in 0..ranks {
            let h = g
                .memory_mut(r)
                .alloc(AddrSpace::Host, Bytes::kib(2))
                .unwrap();
            let pattern = vec![r as u8 + 1; 128];
            g.memory_mut(r).write(h, 0, &pattern).unwrap();
            let mm_snapshot = g.memory(r).clone();
            g.engine_mut(r).protect(0, h, &mm_snapshot).unwrap();
        }
        g
    }

    fn region_first_byte(g: &FtiGroup, rank: usize) -> u8 {
        // Handle 0 is the first allocation in each rank's manager.
        g.memory(rank)
            .data(legato_hw::memory::RegionHandle(0))
            .unwrap()[0]
    }

    fn clobber(g: &mut FtiGroup, rank: usize) {
        g.memory_mut(rank)
            .write(legato_hw::memory::RegionHandle(0), 0, &[0xEE; 128])
            .unwrap();
    }

    #[test]
    fn l1_round_trip() {
        let mut g = real_group(4);
        g.checkpoint_all(CheckpointLevel::L1, Strategy::Async, Seconds::ZERO)
            .unwrap();
        for r in 0..4 {
            clobber(&mut g, r);
        }
        let rec = g.recover_all(Strategy::Async, Seconds(100.0)).unwrap();
        assert!(rec.levels.iter().all(|&l| l == CheckpointLevel::L1));
        for r in 0..4 {
            assert_eq!(region_first_byte(&g, r), r as u8 + 1);
        }
    }

    #[test]
    fn node_contention_serializes_same_node_ranks() {
        let mut g = real_group(4); // 2 ranks per node, 2 nodes
        let rep = g
            .checkpoint_all(CheckpointLevel::L1, Strategy::Async, Seconds::ZERO)
            .unwrap();
        // Ranks 0 and 1 share node 0: the second starts when the first ends.
        assert_eq!(rep.ranks[1].start, rep.ranks[0].finish);
        // Ranks on different nodes start together.
        assert_eq!(rep.ranks[0].start, rep.ranks[2].start);
    }

    #[test]
    fn l2_survives_single_node_loss() {
        let mut g = real_group(4);
        g.checkpoint_all(CheckpointLevel::L2, Strategy::Async, Seconds::ZERO)
            .unwrap();
        g.fail_node(0); // kills L1 of ranks 0,1 and the L2 images hosted on node 0
        for r in 0..4 {
            clobber(&mut g, r);
        }
        g.restart_node(0);
        let rec = g.recover_all(Strategy::Async, Seconds(100.0)).unwrap();
        // Ranks 0,1 lived on node 0: their L2 copies are on node 1 → L2.
        assert_eq!(rec.levels[0], CheckpointLevel::L2);
        assert_eq!(rec.levels[1], CheckpointLevel::L2);
        // Ranks 2,3 keep their local images → L1.
        assert_eq!(rec.levels[2], CheckpointLevel::L1);
        for r in 0..4 {
            assert_eq!(region_first_byte(&g, r), r as u8 + 1, "rank {r}");
        }
    }

    #[test]
    fn l2_images_on_failed_partner_are_lost() {
        let mut g = real_group(4);
        g.checkpoint_all(CheckpointLevel::L2, Strategy::Async, Seconds::ZERO)
            .unwrap();
        // Node 1 hosts the L2 images of ranks 0,1 (partner of node 0).
        g.fail_node(1);
        // Ranks 2,3 lose their L1; their L2 images live on node 0 → fine.
        // But nothing was lost for ranks 0,1 (L1 intact).
        g.restart_node(1);
        let rec = g.recover_all(Strategy::Async, Seconds(50.0)).unwrap();
        assert_eq!(rec.levels[0], CheckpointLevel::L1);
        assert_eq!(rec.levels[2], CheckpointLevel::L2);
        assert_eq!(rec.levels[3], CheckpointLevel::L2);
    }

    #[test]
    fn l3_reconstructs_lost_node_with_real_data() {
        let mut g = real_group(6); // 3 nodes × 2 ranks, parity 2
        g.checkpoint_all(CheckpointLevel::L3, Strategy::Async, Seconds::ZERO)
            .unwrap();
        // Parity lives on nodes 2 and 1; failing node 0 loses exactly the
        // two data shards of ranks 0 and 1 — within the parity budget.
        g.fail_node(0);
        for r in 0..6 {
            clobber(&mut g, r);
        }
        g.restart_node(0);
        let rec = g.recover_all(Strategy::Async, Seconds(200.0)).unwrap();
        assert_eq!(rec.levels[0], CheckpointLevel::L3);
        assert_eq!(rec.levels[1], CheckpointLevel::L3);
        assert_eq!(rec.levels[4], CheckpointLevel::L1);
        for r in 0..6 {
            assert_eq!(region_first_byte(&g, r), r as u8 + 1, "rank {r}");
        }
    }

    #[test]
    fn l3_cannot_outlive_parity_budget() {
        let mut g = real_group(6); // parity 2, 2 ranks/node
        g.checkpoint_all(CheckpointLevel::L3, Strategy::Async, Seconds::ZERO)
            .unwrap();
        // Node 1 hosts parity shard 1 *and* two data shards: 3 losses > 2.
        g.fail_node(1);
        g.restart_node(1);
        assert!(matches!(
            g.recover_all(Strategy::Async, Seconds(10.0)),
            Err(FtiError::MissingCheckpoint { .. })
        ));
    }

    #[test]
    fn l4_survives_everything() {
        let mut g = real_group(4);
        g.checkpoint_all(CheckpointLevel::L4, Strategy::Async, Seconds::ZERO)
            .unwrap();
        g.fail_node(0);
        g.fail_node(1);
        for r in 0..4 {
            clobber(&mut g, r);
        }
        g.restart_node(0);
        g.restart_node(1);
        let rec = g.recover_all(Strategy::Async, Seconds(500.0)).unwrap();
        assert!(rec.levels.iter().all(|&l| l == CheckpointLevel::L4));
        for r in 0..4 {
            assert_eq!(region_first_byte(&g, r), r as u8 + 1);
        }
    }

    #[test]
    fn unrecoverable_when_only_l1_and_node_dies() {
        let mut g = real_group(4);
        g.checkpoint_all(CheckpointLevel::L1, Strategy::Async, Seconds::ZERO)
            .unwrap();
        g.fail_node(0);
        g.restart_node(0);
        assert!(matches!(
            g.recover_all(Strategy::Async, Seconds(10.0)),
            Err(FtiError::MissingCheckpoint { .. })
        ));
    }

    #[test]
    fn l3_needs_enough_ranks() {
        let cfg = FtiConfig::builder().procs_per_node(1).parity(2).build();
        let mut g = FtiGroup::new(cfg, 2);
        for r in 0..2 {
            g.engine_mut(r)
                .protect_phantom(0, AddrSpace::Host, Bytes::kib(1))
                .unwrap();
        }
        assert!(matches!(
            g.checkpoint_all(CheckpointLevel::L3, Strategy::Async, Seconds::ZERO),
            Err(FtiError::LayoutMismatch(_))
        ));
    }

    #[test]
    fn serialize_round_trip() {
        let c = StoredCheckpoint {
            version: 7,
            blobs: vec![(0, vec![1, 2, 3]), (5, vec![9; 100])],
            layout: vec![(0, 3), (5, 100)],
            bytes: Bytes(103),
        };
        let mut ser = serialize_checkpoint(&c);
        ser.resize(ser.len() + 64, 0); // simulate shard padding
        let back = deserialize_checkpoint(&ser, 7).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn phantom_group_wall_time_flat_in_nodes() {
        // The Fig. 6 headline: weak scaling keeps checkpoint time flat
        // because each node writes to its own NVMe.
        let wall = |nodes: usize| {
            let cfg = FtiConfig::default(); // 4 procs/node
            let mut g = FtiGroup::new(cfg, nodes * 4);
            for r in 0..nodes * 4 {
                g.engine_mut(r)
                    .protect_phantom(0, AddrSpace::Unified, Bytes::gib(2))
                    .unwrap();
            }
            g.checkpoint_all(CheckpointLevel::L1, Strategy::Async, Seconds::ZERO)
                .unwrap()
                .wall
        };
        let w1 = wall(1);
        let w4 = wall(4);
        let w8 = wall(8);
        assert!((w4.0 - w1.0).abs() / w1.0 < 0.02, "w1 {w1} vs w4 {w4}");
        assert!((w8.0 - w1.0).abs() / w1.0 < 0.02, "w1 {w1} vs w8 {w8}");
    }
}
