//! Configuration of the checkpoint library.

use legato_core::units::Bytes;
use serde::{Deserialize, Serialize};

/// Configuration of an [`Fti`](crate::fti::Fti) instance or
/// [`FtiGroup`](crate::group::FtiGroup).
///
/// The four `l*_every` counters express the multi-level cadence: every
/// `snapshot()` call increments an iteration counter, and the highest
/// level whose counter divides it is taken (FTI's `ckpt_L*` intervals).
///
/// ```
/// use legato_fti::FtiConfig;
/// use legato_core::units::Bytes;
///
/// let cfg = FtiConfig::builder()
///     .l1_every(2)
///     .l4_every(100)
///     .parity(3)
///     .async_chunk(Bytes::mib(32))
///     .build();
/// assert_eq!(cfg.parity, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FtiConfig {
    /// Snapshots between L1 (local) checkpoints.
    pub l1_every: u32,
    /// Snapshots between L2 (partner) checkpoints.
    pub l2_every: u32,
    /// Snapshots between L3 (Reed–Solomon) checkpoints.
    pub l3_every: u32,
    /// Snapshots between L4 (parallel FS) checkpoints.
    pub l4_every: u32,
    /// Pipeline chunk size of the async strategy.
    pub async_chunk: Bytes,
    /// Chunk size of the initial (synchronous) strategy.
    pub initial_chunk: Bytes,
    /// Reed–Solomon parity shards per group (L3).
    pub parity: usize,
    /// Processes per node (they share the node-local NVMe).
    pub procs_per_node: usize,
}

impl Default for FtiConfig {
    fn default() -> Self {
        FtiConfig {
            l1_every: 1,
            l2_every: 4,
            l3_every: 16,
            l4_every: 64,
            async_chunk: Bytes::mib(64),
            initial_chunk: Bytes::mib(4),
            parity: 2,
            procs_per_node: 4,
        }
    }
}

impl FtiConfig {
    /// Start building a configuration from the defaults.
    #[must_use]
    pub fn builder() -> FtiConfigBuilder {
        FtiConfigBuilder {
            config: FtiConfig::default(),
        }
    }
}

/// Builder for [`FtiConfig`].
#[derive(Debug, Clone)]
pub struct FtiConfigBuilder {
    config: FtiConfig,
}

impl FtiConfigBuilder {
    /// Set the L1 cadence (must be ≥ 1).
    #[must_use]
    pub fn l1_every(mut self, n: u32) -> Self {
        self.config.l1_every = n.max(1);
        self
    }

    /// Set the L2 cadence (must be ≥ 1).
    #[must_use]
    pub fn l2_every(mut self, n: u32) -> Self {
        self.config.l2_every = n.max(1);
        self
    }

    /// Set the L3 cadence (must be ≥ 1).
    #[must_use]
    pub fn l3_every(mut self, n: u32) -> Self {
        self.config.l3_every = n.max(1);
        self
    }

    /// Set the L4 cadence (must be ≥ 1).
    #[must_use]
    pub fn l4_every(mut self, n: u32) -> Self {
        self.config.l4_every = n.max(1);
        self
    }

    /// Set the async pipeline chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn async_chunk(mut self, chunk: Bytes) -> Self {
        assert!(chunk > Bytes::ZERO, "chunk must be positive");
        self.config.async_chunk = chunk;
        self
    }

    /// Set the initial-strategy chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn initial_chunk(mut self, chunk: Bytes) -> Self {
        assert!(chunk > Bytes::ZERO, "chunk must be positive");
        self.config.initial_chunk = chunk;
        self
    }

    /// Set the Reed–Solomon parity count.
    ///
    /// # Panics
    ///
    /// Panics if `parity` is zero.
    #[must_use]
    pub fn parity(mut self, parity: usize) -> Self {
        assert!(parity >= 1, "parity must be at least 1");
        self.config.parity = parity;
        self
    }

    /// Set the number of processes per node.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn procs_per_node(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one process per node");
        self.config.procs_per_node = n;
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> FtiConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = FtiConfig::default();
        assert_eq!(c.l1_every, 1);
        assert!(c.l2_every >= c.l1_every);
        assert!(c.async_chunk > c.initial_chunk);
        assert_eq!(c.procs_per_node, 4); // Fig. 6: "in each node we execute 4 processes"
    }

    #[test]
    fn builder_overrides() {
        let c = FtiConfig::builder()
            .l1_every(3)
            .l2_every(6)
            .l3_every(12)
            .l4_every(24)
            .parity(4)
            .procs_per_node(2)
            .initial_chunk(Bytes::mib(1))
            .async_chunk(Bytes::mib(128))
            .build();
        assert_eq!(c.l1_every, 3);
        assert_eq!(c.l4_every, 24);
        assert_eq!(c.parity, 4);
        assert_eq!(c.procs_per_node, 2);
    }

    #[test]
    fn zero_cadence_clamped() {
        let c = FtiConfig::builder().l1_every(0).build();
        assert_eq!(c.l1_every, 1);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let _ = FtiConfig::builder().async_chunk(Bytes::ZERO);
    }
}
