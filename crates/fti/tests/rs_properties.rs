//! Property-based tests of the Reed–Solomon erasure coder: the L3
//! checkpoint level's correctness rests entirely on these invariants.

use legato_fti::ReedSolomon;
use proptest::prelude::*;

/// Geometry + data strategy: small but varied shard configurations.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    // (data shards, parity shards, shard length)
    (1usize..8, 1usize..4, 0usize..128)
}

proptest! {
    /// Any loss of up to `parity` shards is fully recoverable, and the
    /// recovered data shards are bit-identical to the originals.
    #[test]
    fn reconstruct_recovers_any_tolerable_loss(
        (k, m, len) in geometry(),
        seed in 0u64..1000,
        loss_selector in prop::collection::vec(any::<u16>(), 0..4),
    ) {
        let rs = ReedSolomon::new(k, m).expect("valid geometry");
        // Deterministic pseudo-random shard content.
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((seed as usize + i * 131 + j * 17) % 256) as u8)
                    .collect()
            })
            .collect();
        let parity = rs.encode(&data).expect("encode");
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(parity).map(Some).collect();

        // Erase up to `m` distinct shards chosen by the selector.
        let total = k + m;
        let mut erased = std::collections::HashSet::new();
        for sel in loss_selector.iter().take(m) {
            erased.insert(*sel as usize % total);
        }
        for &e in &erased {
            shards[e] = None;
        }

        rs.reconstruct(&mut shards).expect("within parity budget");
        for (i, original) in data.iter().enumerate() {
            prop_assert_eq!(shards[i].as_ref().expect("restored"), original);
        }
    }

    /// Losing more than `parity` shards is always detected as an error,
    /// never silently mis-decoded.
    #[test]
    fn over_budget_loss_is_rejected(
        (k, m, len) in geometry(),
    ) {
        prop_assume!(k + m > m);
        let rs = ReedSolomon::new(k, m).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; len]).collect();
        let parity = rs.encode(&data).expect("encode");
        let mut shards: Vec<Option<Vec<u8>>> =
            data.into_iter().chain(parity).map(Some).collect();
        // Erase m + 1 shards (guaranteed over budget).
        for slot in shards.iter_mut().take(m + 1) {
            *slot = None;
        }
        let result = rs.reconstruct(&mut shards);
        if k > m + 1 || k + m > m + 1 + m {
            // Fewer than k survivors whenever k + m - (m+1) < k, i.e. always.
            prop_assert!(result.is_err());
        }
    }

    /// Malformed input: whenever surviving shards have *unequal* lengths,
    /// `reconstruct` reports `ShardLengthMismatch` — it never panics and
    /// never silently decodes garbage — and equal-length survivors always
    /// decode. Lengths here are arbitrary per shard.
    #[test]
    fn unequal_survivor_lengths_always_rejected(
        (k, m) in (1usize..8, 1usize..4),
        lengths in prop::collection::vec(0usize..64, 12),
        erased in any::<u16>(),
    ) {
        use legato_fti::FtiError;

        let rs = ReedSolomon::new(k, m).expect("valid geometry");
        let base_len = lengths[0];
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; base_len]).collect();
        let parity = rs.encode(&data).expect("encode");
        let mut shards: Vec<Option<Vec<u8>>> =
            data.into_iter().chain(parity).map(Some).collect();
        shards[erased as usize % (k + m)] = None;

        // Resize each surviving shard to its arbitrary length.
        for (slot, &len) in shards.iter_mut().zip(&lengths) {
            if let Some(s) = slot {
                s.resize(len, 0xA5);
            }
        }
        let distinct: std::collections::HashSet<usize> = shards
            .iter()
            .filter_map(|s| s.as_ref().map(Vec::len))
            .collect();
        let result = rs.reconstruct(&mut shards);
        if distinct.len() > 1 {
            prop_assert!(
                matches!(result, Err(FtiError::ShardLengthMismatch { .. })),
                "expected ShardLengthMismatch, got {result:?}"
            );
        } else {
            prop_assert!(result.is_ok(), "uniform lengths must decode: {result:?}");
        }
    }

    /// Parity is deterministic: encoding the same data twice yields the
    /// same shards (no hidden state).
    #[test]
    fn encode_is_deterministic((k, m, len) in geometry()) {
        let rs = ReedSolomon::new(k, m).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![(i * 37) as u8; len]).collect();
        let a = rs.encode(&data).expect("encode");
        let b = rs.encode(&data).expect("encode");
        prop_assert_eq!(a, b);
    }

    /// Single-byte corruption of a data shard always changes at least one
    /// parity shard (the code has minimum distance > 1).
    #[test]
    fn parity_detects_single_corruption(
        (k, m) in (2usize..8, 1usize..4),
        byte in any::<u8>(),
        pos in any::<u16>(),
    ) {
        let len = 32usize;
        let rs = ReedSolomon::new(k, m).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; len]).collect();
        let clean = rs.encode(&data).expect("encode");
        let mut corrupted = data.clone();
        let target = pos as usize % (k * len);
        let (shard, offset) = (target / len, target % len);
        let old = corrupted[shard][offset];
        prop_assume!(old != byte);
        corrupted[shard][offset] = byte;
        let dirty = rs.encode(&corrupted).expect("encode");
        prop_assert_ne!(clean, dirty);
    }
}
