//! Property-based tests of the dataflow graph invariants.
//!
//! These encode the contracts every downstream crate relies on: the graph is
//! acyclic, dependences only point backwards in submission order, executing
//! in ready order always drains the graph, and RAW serialization holds for
//! every region.

use legato_core::graph::{TaskGraph, TaskState};
use legato_core::task::{AccessMode, TaskDescriptor, TaskId};
use proptest::prelude::*;

/// A random access declaration: small region space to force conflicts.
fn access_strategy() -> impl Strategy<Value = (u64, AccessMode)> {
    (
        0u64..6,
        prop_oneof![
            Just(AccessMode::In),
            Just(AccessMode::Out),
            Just(AccessMode::InOut)
        ],
    )
}

fn accesses_strategy() -> impl Strategy<Value = Vec<(u64, AccessMode)>> {
    prop::collection::vec(access_strategy(), 0..4)
}

fn graph_strategy() -> impl Strategy<Value = Vec<Vec<(u64, AccessMode)>>> {
    prop::collection::vec(accesses_strategy(), 1..40)
}

fn build(tasks: &[Vec<(u64, AccessMode)>]) -> TaskGraph {
    let mut g = TaskGraph::new();
    for (i, acc) in tasks.iter().enumerate() {
        g.add_task(TaskDescriptor::named(format!("t{i}")), acc.iter().copied());
    }
    g
}

proptest! {
    /// Every dependence edge points from an earlier task to a later one,
    /// which guarantees acyclicity.
    #[test]
    fn edges_point_forward(tasks in graph_strategy()) {
        let g = build(&tasks);
        for i in 0..g.len() {
            let id = TaskId(i as u64);
            for &p in g.predecessors(id).unwrap() {
                prop_assert!(p < id, "predecessor {p} of {id} is not earlier");
            }
            for &s in g.successors(id).unwrap() {
                prop_assert!(s > id, "successor {s} of {id} is not later");
            }
        }
    }

    /// Repeatedly completing any ready task drains the whole graph — no
    /// deadlock, no lost wakeups.
    #[test]
    fn ready_order_execution_drains(tasks in graph_strategy()) {
        let mut g = build(&tasks);
        let mut done = 0usize;
        while !g.is_complete() {
            let ready = g.ready();
            prop_assert!(!ready.is_empty(), "graph stuck with {done} done of {}", g.len());
            // Complete the *last* ready task to vary order vs submission.
            let pick = *ready.last().unwrap();
            g.complete(pick).unwrap();
            done += 1;
        }
        prop_assert_eq!(done, g.len());
    }

    /// Predecessor and successor lists agree (edge symmetry).
    #[test]
    fn edge_symmetry(tasks in graph_strategy()) {
        let g = build(&tasks);
        for i in 0..g.len() {
            let id = TaskId(i as u64);
            for &p in g.predecessors(id).unwrap() {
                prop_assert!(g.successors(p).unwrap().contains(&id));
            }
            for &s in g.successors(id).unwrap() {
                prop_assert!(g.predecessors(s).unwrap().contains(&id));
            }
        }
    }

    /// For every region, two consecutive writers are ordered by a dependence
    /// path (write serialization).
    #[test]
    fn writers_of_same_region_are_ordered(tasks in graph_strategy()) {
        let g = build(&tasks);
        // Collect writers per region in submission order.
        let mut writers: std::collections::HashMap<u64, Vec<TaskId>> = Default::default();
        for (i, acc) in tasks.iter().enumerate() {
            let id = TaskId(i as u64);
            if acc.iter().any(|(_, m)| m.writes()) {
                for (r, m) in acc {
                    if m.writes() {
                        writers.entry(*r).or_default().push(id);
                    }
                }
            }
        }
        for (_region, ws) in writers {
            for pair in ws.windows(2) {
                if pair[0] == pair[1] { continue; }
                prop_assert!(
                    path_exists(&g, pair[0], pair[1]),
                    "no path {} -> {}", pair[0], pair[1]
                );
            }
        }
    }

    /// Failing the first task poisons exactly the set of tasks reachable
    /// from it, and each poisoned task's root cause is that task.
    #[test]
    fn poison_matches_reachability(tasks in graph_strategy()) {
        let mut g = build(&tasks);
        let reachable = reachable_set(&g, TaskId(0));
        let poisoned = g.fail(TaskId(0)).unwrap();
        let poisoned_set: std::collections::HashSet<TaskId> =
            poisoned.iter().copied().collect();
        prop_assert_eq!(&poisoned_set, &reachable);
        for p in &poisoned {
            prop_assert_eq!(g.state(*p).unwrap(), TaskState::Poisoned);
            let causes = g.root_cause(*p).unwrap();
            prop_assert_eq!(causes, vec![TaskId(0)]);
        }
    }

    /// The critical path cost never exceeds total work and is at least the
    /// most expensive single task.
    #[test]
    fn critical_path_bounds(tasks in graph_strategy()) {
        let g = build(&tasks);
        let cost = |id: TaskId, _d: &TaskDescriptor| 1.0 + (id.0 % 5) as f64;
        let (len, path) = g.critical_path(cost).unwrap();
        let total = g.total_cost(cost);
        let max_single = (0..g.len() as u64)
            .map(|i| cost(TaskId(i), g.descriptor(TaskId(i)).unwrap()))
            .fold(0.0_f64, f64::max);
        prop_assert!(len <= total + 1e-9);
        prop_assert!(len >= max_single - 1e-9);
        // Path must follow dependence edges.
        for w in path.windows(2) {
            prop_assert!(g.predecessors(w[1]).unwrap().contains(&w[0]));
        }
    }
}

fn reachable_set(g: &TaskGraph, from: TaskId) -> std::collections::HashSet<TaskId> {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![from];
    while let Some(t) = stack.pop() {
        for &s in g.successors(t).unwrap() {
            if seen.insert(s) {
                stack.push(s);
            }
        }
    }
    seen
}

fn path_exists(g: &TaskGraph, from: TaskId, to: TaskId) -> bool {
    reachable_set(g, from).contains(&to)
}
