//! Non-functional requirements attached to tasks.
//!
//! LEGaTO applications "have a different set of requirements in terms of
//! energy efficiency, Fault Tolerance, and Security … facilitated by a
//! single programming model which … allows the developer to specify their
//! requirements" (paper, §II). This module is that specification surface:
//! a [`Requirements`] value travels with every task descriptor and is
//! interpreted by the runtime (replication, checkpointing), by HEATS (the
//! energy/performance trade-off weight) and by the secure layer (enclave
//! placement).

use serde::{Deserialize, Serialize};

/// How reliability-critical a task is.
///
/// The LEGaTO runtime performs *energy-efficient selective replication*:
/// "only the most reliability-critical tasks will be replicated" (paper,
/// §I). The runtime maps these levels to replica counts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Criticality {
    /// Failure is tolerable (e.g. a dropped video frame).
    Low,
    /// Default level: failures are detected but not masked.
    #[default]
    Normal,
    /// Failures must be detected and the task retried.
    High,
    /// Failures must be masked; the runtime replicates and votes.
    Critical,
}

impl Criticality {
    /// Number of replicas the runtime schedules for this level
    /// (1 = no replication).
    #[must_use]
    pub fn replica_count(self) -> usize {
        match self {
            Criticality::Low | Criticality::Normal => 1,
            Criticality::High => 2,
            Criticality::Critical => 3,
        }
    }

    /// Whether results of replicas must be voted on.
    #[must_use]
    pub fn requires_voting(self) -> bool {
        matches!(self, Criticality::Critical)
    }
}

/// Confidentiality class of the data a task touches — the scheduling
/// dimension behind the paper's security pillar. The runtime interprets
/// it end to end: `Enclave` tasks are *only* placed on TEE-capable
/// devices (attested once per (enclave, device) pair), and regions
/// written at `Confidential` or above are sealed at rest, so any traffic
/// that crosses a device boundary — or enters a checkpoint — pays
/// seal/unseal costs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum SecurityLevel {
    /// No confidentiality requirement ("public").
    #[default]
    Public,
    /// Sealed I/O: the task's written regions are sealed at rest and on
    /// any cross-device hop; execution may run outside an enclave.
    Confidential,
    /// Enclave-only: execution must happen inside a (simulated) enclave
    /// with attestation, on a TEE-capable device.
    Enclave,
}

/// Alias naming the requirement after what it declares — the
/// confidentiality class (public / sealed-io / enclave-only); identical
/// to [`SecurityLevel`].
pub type Confidentiality = SecurityLevel;

impl SecurityLevel {
    /// Whether this level forces enclave execution.
    #[must_use]
    pub fn requires_enclave(self) -> bool {
        matches!(self, SecurityLevel::Enclave)
    }

    /// Whether regions written by a task at this level are sealed at
    /// rest (and therefore seal/unseal on every cross-device hop and
    /// checkpoint write).
    #[must_use]
    pub fn seals_at_rest(self) -> bool {
        !matches!(self, SecurityLevel::Public)
    }
}

/// Bundle of non-functional requirements for one task.
///
/// ```
/// use legato_core::requirements::{Criticality, Requirements, SecurityLevel};
///
/// let req = Requirements::new()
///     .with_energy_weight(0.8)
///     .with_criticality(Criticality::Critical)
///     .with_security(SecurityLevel::Enclave);
/// assert_eq!(req.criticality.replica_count(), 3);
/// assert!(req.security.requires_enclave());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Energy/performance trade-off in `[0, 1]`: `0.0` means "pure
    /// performance", `1.0` means "pure energy efficiency". HEATS calls this
    /// the customer-demanded weight.
    pub energy_weight: f64,
    /// Reliability criticality level.
    pub criticality: Criticality,
    /// Confidentiality level.
    pub security: SecurityLevel,
    /// Whether the task's declared data should be included in application
    /// level checkpoints ("only the necessary and sufficient data (declared
    /// at the task entry) will be checkpointed", paper §I).
    pub checkpointed: bool,
}

impl Requirements {
    /// Requirements with all defaults: balanced energy weight, normal
    /// criticality, public data, no checkpointing.
    #[must_use]
    pub fn new() -> Self {
        Requirements {
            energy_weight: 0.5,
            criticality: Criticality::Normal,
            security: SecurityLevel::Public,
            checkpointed: false,
        }
    }

    /// Set the energy/performance trade-off weight.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not in `[0, 1]` or not finite.
    #[must_use]
    pub fn with_energy_weight(mut self, w: f64) -> Self {
        assert!(
            w.is_finite() && (0.0..=1.0).contains(&w),
            "energy weight must be in [0, 1], got {w}"
        );
        self.energy_weight = w;
        self
    }

    /// Set the criticality level.
    #[must_use]
    pub fn with_criticality(mut self, c: Criticality) -> Self {
        self.criticality = c;
        self
    }

    /// Set the security level.
    #[must_use]
    pub fn with_security(mut self, s: SecurityLevel) -> Self {
        self.security = s;
        self
    }

    /// Mark the task's declared data for application-level checkpointing.
    #[must_use]
    pub fn with_checkpointing(mut self, on: bool) -> Self {
        self.checkpointed = on;
        self
    }
}

impl Default for Requirements {
    fn default() -> Self {
        Requirements::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_neutral() {
        let r = Requirements::default();
        assert_eq!(r.energy_weight, 0.5);
        assert_eq!(r.criticality, Criticality::Normal);
        assert_eq!(r.security, SecurityLevel::Public);
        assert!(!r.checkpointed);
    }

    #[test]
    fn replica_counts_follow_criticality() {
        assert_eq!(Criticality::Low.replica_count(), 1);
        assert_eq!(Criticality::Normal.replica_count(), 1);
        assert_eq!(Criticality::High.replica_count(), 2);
        assert_eq!(Criticality::Critical.replica_count(), 3);
    }

    #[test]
    fn only_critical_votes() {
        assert!(Criticality::Critical.requires_voting());
        assert!(!Criticality::High.requires_voting());
    }

    #[test]
    fn criticality_is_ordered() {
        assert!(Criticality::Low < Criticality::Normal);
        assert!(Criticality::Normal < Criticality::High);
        assert!(Criticality::High < Criticality::Critical);
    }

    #[test]
    fn security_enclave_detection() {
        assert!(!SecurityLevel::Public.requires_enclave());
        assert!(!SecurityLevel::Confidential.requires_enclave());
        assert!(SecurityLevel::Enclave.requires_enclave());
    }

    #[test]
    fn sealing_levels() {
        assert!(!SecurityLevel::Public.seals_at_rest());
        assert!(SecurityLevel::Confidential.seals_at_rest());
        assert!(SecurityLevel::Enclave.seals_at_rest());
        // The confidentiality alias names the same type.
        let c: Confidentiality = SecurityLevel::Enclave;
        assert!(c.seals_at_rest());
    }

    #[test]
    #[should_panic(expected = "energy weight must be in [0, 1]")]
    fn rejects_out_of_range_weight() {
        let _ = Requirements::new().with_energy_weight(1.5);
    }

    #[test]
    fn builder_chain() {
        let r = Requirements::new()
            .with_energy_weight(1.0)
            .with_criticality(Criticality::High)
            .with_checkpointing(true);
        assert_eq!(r.energy_weight, 1.0);
        assert_eq!(r.criticality, Criticality::High);
        assert!(r.checkpointed);
    }
}
