//! # legato-core
//!
//! Core abstractions of the LEGaTO toolset reproduction: physical [`units`],
//! the generalized [`task`] model with data-direction annotations, the
//! dataflow [`graph`] that OmpSs-style runtimes derive from those
//! annotations, non-functional [`requirements`] (energy, reliability,
//! security), and small numeric [`stats`] helpers shared by the schedulers
//! and the experiment harnesses.
//!
//! LEGaTO's central bet is that *"optimization opportunities for low-energy
//! computing can be maximized through the task abstraction"* (paper, §I).
//! Everything in this crate exists to make that abstraction precise enough
//! to build a runtime, a checkpoint library, a cluster scheduler and a fault
//! tolerance layer on top of it without any of them redefining what a task
//! is.
//!
//! ## Example
//!
//! Build a four-task diamond through data-access annotations alone; the
//! graph derives the dependence edges exactly like an OmpSs front-end would:
//!
//! ```
//! use legato_core::graph::TaskGraph;
//! use legato_core::task::{AccessMode, TaskDescriptor};
//!
//! let mut g = TaskGraph::new();
//! let a = g.add_task(TaskDescriptor::named("produce"), [(0, AccessMode::Out)]);
//! let b = g.add_task(TaskDescriptor::named("left"), [(0, AccessMode::In), (1, AccessMode::Out)]);
//! let c = g.add_task(TaskDescriptor::named("right"), [(0, AccessMode::In), (2, AccessMode::Out)]);
//! let d = g.add_task(
//!     TaskDescriptor::named("join"),
//!     [(1, AccessMode::In), (2, AccessMode::In)],
//! );
//! assert_eq!(g.ready().len(), 1);     // only `a` is ready
//! g.complete(a);
//! assert_eq!(g.ready().len(), 2);     // `b` and `c` unlocked
//! g.complete(b);
//! g.complete(c);
//! assert_eq!(g.ready(), vec![d]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod reach;
pub mod requirements;
pub mod stats;
pub mod task;
pub mod units;

pub use error::CoreError;
pub use graph::{GraphBuilder, TaskGraph};
pub use reach::Reachability;
pub use requirements::{Confidentiality, Criticality, Requirements, SecurityLevel};
pub use task::{AccessMode, TaskDescriptor, TaskId, TaskKind};
pub use units::{Bytes, Joule, Seconds, Volt, Watt};
