//! Dataflow task graph with OmpSs-style dependence inference.
//!
//! Tasks are appended in program order with their `(region, mode)` access
//! declarations; the graph inserts read-after-write, write-after-read and
//! write-after-write edges automatically. Because edges always point from an
//! earlier submission to a later one, the graph is acyclic by construction.
//!
//! Beyond scheduling (ready set maintenance), the graph supports the two
//! fault-tolerance analyses the paper assigns to the task model (§I):
//!
//! * **error propagation across task boundaries** — [`TaskGraph::fail`]
//!   poisons every transitive successor of a failed task;
//! * **failure root-cause analysis** — [`TaskGraph::root_cause`] walks the
//!   dependence edges backwards from a poisoned task to the failed
//!   ancestors that explain it.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::task::{AccessMode, RegionId, TaskDescriptor, TaskId};

/// Lifecycle state of a task inside the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Waiting for predecessors.
    Pending,
    /// All predecessors completed; eligible to run.
    Ready,
    /// Claimed by a scheduler (between [`TaskGraph::start`] and
    /// [`TaskGraph::complete`]).
    Running,
    /// Finished successfully.
    Completed,
    /// Finished with an error.
    Failed,
    /// A transitive predecessor failed; the task's inputs are suspect.
    Poisoned,
}

impl TaskState {
    /// Whether the task has reached a terminal state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Completed | TaskState::Failed | TaskState::Poisoned
        )
    }
}

/// Cold per-task data: looked up once per lifecycle phase. The *hot*
/// per-task fields the executors touch on every event — lifecycle state
/// and unmet-dependence count — live in dense parallel arrays on
/// [`TaskGraph`] (`states`, `unmet`), so the engine's readiness-order
/// (i.e. random-order) walks stay cache-resident instead of dragging a
/// full node struct through the cache per touch.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    descriptor: TaskDescriptor,
    preds: Vec<TaskId>,
    succs: Vec<TaskId>,
    accesses: Vec<(RegionId, AccessMode)>,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RegionHistory {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Per-region liveness counters, maintained incrementally on every task
/// state transition. A region is *live* — must be checkpointed at the
/// current frontier — iff `writers_done ≥ 1` (a completed task produced
/// it) and `readers_outstanding ≥ 1` (an unfinished task still needs it).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct RegionLiveness {
    /// Completed tasks (access declarations) that write the region.
    writers_done: usize,
    /// Read declarations by tasks in `Pending`/`Ready`/`Running` state.
    readers_outstanding: usize,
}

impl RegionLiveness {
    fn is_live(self) -> bool {
        self.writers_done >= 1 && self.readers_outstanding >= 1
    }
}

/// A dynamic dataflow DAG over [`TaskDescriptor`]s.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    nodes: Vec<Node>,
    /// Lifecycle state per task (parallel to `nodes`) — the hottest
    /// field in the graph, touched 3–5 times per task per run.
    states: Vec<TaskState>,
    /// Outstanding-dependence count per task (parallel to `nodes`).
    unmet: Vec<usize>,
    regions: HashMap<RegionId, RegionHistory>,
    edge_count: usize,
    /// Bitmap over task ids of tasks currently in
    /// [`TaskState::Completed`]. O(1) per transition — crucially,
    /// *independent of completion order*: the event engine completes
    /// tasks in readiness order, where any sorted-list representation
    /// degenerates to an O(n) shift per completion. The checkpoint path
    /// materializes the sorted view from the bitmap in O(n/64 + completed)
    /// only when it snapshots.
    completed_bits: Vec<u64>,
    /// Number of set bits in `completed_bits`.
    completed_count: usize,
    /// Bitmap over task ids of tasks currently in [`TaskState::Ready`]
    /// (one bit per task, word-packed). O(1) insert/remove — the former
    /// sorted-`Vec` representation paid an O(ready) memmove on both
    /// sides of every task lifecycle, which the event engine crosses
    /// once per task.
    ready_bits: Vec<u64>,
    /// Number of set bits in `ready_bits`.
    ready_count: usize,
    /// Per-region liveness refcounts (see [`RegionLiveness`]), updated on
    /// every state transition.
    liveness: HashMap<RegionId, RegionLiveness>,
    /// Regions whose counters currently satisfy [`RegionLiveness::is_live`]
    /// — the incremental mirror of the frontier-liveness analysis, so
    /// checkpoint volume queries are O(live) instead of O(V + E).
    live_set: HashSet<RegionId>,
}

impl TaskGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Number of tasks ever submitted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no task has been submitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of dependence edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of tasks in [`TaskState::Completed`].
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// Whether every task completed successfully.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed_count == self.nodes.len()
    }

    /// All tasks currently in [`TaskState::Completed`], in submission
    /// order.
    ///
    /// Maintained incrementally as a bitmap by [`TaskGraph::complete`]
    /// and [`TaskGraph::rollback`] (O(1) per transition, regardless of
    /// completion order); materializing the sorted view walks the bitmap
    /// words — O(n/64 + completed), paid only by snapshotters (the
    /// engine's checkpoint path, once per checkpoint), never per event.
    #[must_use]
    pub fn completed(&self) -> Vec<TaskId> {
        collect_bits(&self.completed_bits, self.completed_count)
    }

    /// Regions live at the current execution frontier: written by a
    /// completed task and still read by at least one unfinished
    /// (pending/ready/running) task. Only these need checkpointing —
    /// everything else is either dead or reproducible by re-running
    /// unfinished tasks.
    ///
    /// Maintained incrementally per state transition (O(accesses) per
    /// transition), so iterating here is O(live) — the property the
    /// engine's per-checkpoint volume pricing relies on. Iteration order
    /// is unspecified; callers that need determinism must aggregate
    /// order-independently (sums, set building).
    pub fn live_regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.live_set.iter().copied()
    }

    /// Number of regions currently live at the frontier, without
    /// iterating.
    #[must_use]
    pub fn live_region_count(&self) -> usize {
        self.live_set.len()
    }

    /// Submit a task with its data-access declarations, returning its id.
    ///
    /// Dependence edges are inferred against previously submitted tasks:
    ///
    /// * a read of region `r` depends on the last writer of `r` (RAW);
    /// * a write of `r` depends on the last writer (WAW) **and** on every
    ///   reader since that write (WAR).
    ///
    /// Duplicate edges between a task pair are coalesced.
    pub fn add_task<I, R>(&mut self, descriptor: TaskDescriptor, accesses: I) -> TaskId
    where
        I: IntoIterator<Item = (R, AccessMode)>,
        R: Into<RegionId>,
    {
        let id = TaskId(self.nodes.len() as u64);
        let accesses: Vec<(RegionId, AccessMode)> =
            accesses.into_iter().map(|(r, m)| (r.into(), m)).collect();

        let mut preds: Vec<TaskId> = Vec::new();
        for &(region, mode) in &accesses {
            let hist = self.regions.entry(region).or_default();
            if mode.reads() {
                if let Some(w) = hist.last_writer {
                    preds.push(w);
                }
            }
            if mode.writes() {
                if let Some(w) = hist.last_writer {
                    preds.push(w);
                }
                preds.extend(hist.readers_since_write.iter().copied());
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        // Only count predecessors that are still outstanding.
        let unmet = preds
            .iter()
            .filter(|p| !self.states[p.index()].is_terminal())
            .count();

        if id.index() / 64 == self.ready_bits.len() {
            // One new word per 64 tasks, for both per-task bitmaps.
            self.ready_bits.push(0);
            self.completed_bits.push(0);
        }
        let state = if unmet == 0 {
            self.insert_ready(id);
            TaskState::Ready
        } else {
            TaskState::Pending
        };
        for &p in &preds {
            self.nodes[p.index()].succs.push(id);
        }
        self.edge_count += preds.len();

        // Update region histories *after* computing dependences.
        for &(region, mode) in &accesses {
            let hist = self.regions.entry(region).or_default();
            if mode.writes() {
                hist.last_writer = Some(id);
                hist.readers_since_write.clear();
            }
            if mode.reads() && !mode.writes() {
                hist.readers_since_write.push(id);
            }
        }
        // The new task is pending or ready: its reads are outstanding.
        for &(region, mode) in &accesses {
            if mode.reads() {
                self.update_liveness(region, |l| l.readers_outstanding += 1);
            }
        }

        self.states.push(state);
        self.unmet.push(unmet);
        self.nodes.push(Node {
            descriptor,
            preds,
            succs: Vec::new(),
            accesses,
        });
        id
    }

    /// Descriptor of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    #[inline]
    pub fn descriptor(&self, id: TaskId) -> Result<&TaskDescriptor, CoreError> {
        self.node(id).map(|n| &n.descriptor)
    }

    /// Current lifecycle state of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    #[inline]
    pub fn state(&self, id: TaskId) -> Result<TaskState, CoreError> {
        self.states
            .get(id.index())
            .copied()
            .ok_or(CoreError::UnknownTask(id))
    }

    /// Direct predecessors (dependences) of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn predecessors(&self, id: TaskId) -> Result<&[TaskId], CoreError> {
        self.node(id).map(|n| n.preds.as_slice())
    }

    /// Direct successors (dependents) of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn successors(&self, id: TaskId) -> Result<&[TaskId], CoreError> {
        self.node(id).map(|n| n.succs.as_slice())
    }

    /// The `(region, mode)` declarations a task was submitted with.
    ///
    /// The FTI integration uses this to checkpoint exactly the data declared
    /// at task entry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    #[inline]
    pub fn accesses(&self, id: TaskId) -> Result<&[(RegionId, AccessMode)], CoreError> {
        self.node(id).map(|n| n.accesses.as_slice())
    }

    /// All tasks currently in [`TaskState::Ready`], in submission order.
    ///
    /// The ready set is maintained incrementally as a bitmap by
    /// [`TaskGraph::add_task`], [`TaskGraph::start`],
    /// [`TaskGraph::complete`] and [`TaskGraph::fail`] — O(1) per
    /// transition. Materializing the view walks the bitmap words,
    /// O(n/64 + ready), which only view callers pay; the engine's hot
    /// path never does.
    #[must_use]
    pub fn ready(&self) -> Vec<TaskId> {
        collect_bits(&self.ready_bits, self.ready_count)
    }

    /// Number of tasks currently ready, without allocating.
    #[must_use]
    pub fn ready_count(&self) -> usize {
        self.ready_count
    }

    /// Mark a ready task as running (claimed by a worker).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task is not ready.
    pub fn start(&mut self, id: TaskId) -> Result<(), CoreError> {
        if self.try_claim(id)?.is_some() {
            Ok(())
        } else {
            Err(CoreError::InvalidTransition {
                task: id,
                reason: "task is not ready",
            })
        }
    }

    /// Claim a task for execution if (and only if) it is ready: one node
    /// lookup answering "is this ready?", performing the
    /// `Ready → Running` transition, and handing back the descriptor the
    /// claimer is about to place — all in a single node access. Returns
    /// `None` for a task in any other state — the event engine uses this
    /// to drop stale ready events (task already executed, or poisoned
    /// upstream) without a second state probe.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for an id outside the graph.
    #[inline]
    pub fn try_claim(&mut self, id: TaskId) -> Result<Option<&TaskDescriptor>, CoreError> {
        let state = self
            .states
            .get_mut(id.index())
            .ok_or(CoreError::UnknownTask(id))?;
        if *state != TaskState::Ready {
            return Ok(None);
        }
        *state = TaskState::Running;
        self.remove_ready(id);
        Ok(Some(&self.nodes[id.index()].descriptor))
    }

    /// Complete a task, returning the tasks that became ready.
    ///
    /// Accepts tasks in `Ready` or `Running` state (schedulers that do not
    /// bother with [`TaskGraph::start`] may complete directly).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task is pending or terminal.
    pub fn complete(&mut self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        let mut released = Vec::new();
        self.complete_into(id, &mut released)?;
        Ok(released)
    }

    /// Allocation-free variant of [`TaskGraph::complete`]: the tasks that
    /// became ready are *appended* to `released` (not cleared first), so a
    /// caller-owned scratch buffer can be reused across completions — the
    /// event engine drives every task completion through here.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TaskGraph::complete`]; on error `released` is
    /// untouched.
    #[inline]
    pub fn complete_into(
        &mut self,
        id: TaskId,
        released: &mut Vec<TaskId>,
    ) -> Result<(), CoreError> {
        {
            let state = self
                .states
                .get_mut(id.index())
                .ok_or(CoreError::UnknownTask(id))?;
            match *state {
                TaskState::Ready | TaskState::Running => {
                    let was_ready = *state == TaskState::Ready;
                    *state = TaskState::Completed;
                    if was_ready {
                        self.remove_ready(id);
                    }
                }
                TaskState::Pending => {
                    return Err(CoreError::InvalidTransition {
                        task: id,
                        reason: "task still has unmet dependences",
                    })
                }
                _ => {
                    return Err(CoreError::InvalidTransition {
                        task: id,
                        reason: "task already terminal",
                    })
                }
            }
        }
        self.insert_completed(id);
        // The task's reads are settled; its writes are now produced by a
        // completed task. Both can flip region liveness.
        for a in 0..self.nodes[id.index()].accesses.len() {
            let (region, mode) = self.nodes[id.index()].accesses[a];
            self.update_liveness(region, |l| {
                if mode.reads() {
                    l.readers_outstanding -= 1;
                }
                if mode.writes() {
                    l.writers_done += 1;
                }
            });
        }
        self.release_successors(id, released);
        Ok(())
    }

    /// Fail a task and poison all transitive successors whose inputs are now
    /// suspect ("detecting error propagation across task boundaries",
    /// paper §I). Returns the poisoned tasks in topological order.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task already terminal.
    pub fn fail(&mut self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        {
            let state = self
                .states
                .get_mut(id.index())
                .ok_or(CoreError::UnknownTask(id))?;
            if state.is_terminal() {
                return Err(CoreError::InvalidTransition {
                    task: id,
                    reason: "task already terminal",
                });
            }
            let was_ready = *state == TaskState::Ready;
            *state = TaskState::Failed;
            if was_ready {
                self.remove_ready(id);
            }
        }
        self.retire_reads(id);
        let mut poisoned = Vec::new();
        let mut stack: Vec<TaskId> = self.nodes[id.index()].succs.clone();
        while let Some(next) = stack.pop() {
            let state = &mut self.states[next.index()];
            if *state == TaskState::Poisoned || *state == TaskState::Failed {
                continue;
            }
            let was_ready = *state == TaskState::Ready;
            *state = TaskState::Poisoned;
            if was_ready {
                self.remove_ready(next);
            }
            self.retire_reads(next);
            poisoned.push(next);
            stack.extend(self.nodes[next.index()].succs.iter().copied());
        }
        poisoned.sort_unstable();
        poisoned.dedup();
        Ok(poisoned)
    }

    /// A task left the pending/ready/running population without
    /// completing (failed or poisoned): its reads are no longer
    /// outstanding.
    fn retire_reads(&mut self, id: TaskId) {
        for a in 0..self.nodes[id.index()].accesses.len() {
            let (region, mode) = self.nodes[id.index()].accesses[a];
            if mode.reads() {
                self.update_liveness(region, |l| l.readers_outstanding -= 1);
            }
        }
    }

    /// Apply `mutate` to a region's liveness counters and maintain the
    /// live set on liveness *transitions* only — one hash lookup per
    /// access in steady state (a region goes live once and dies once, so
    /// the set update is amortized away on the completion hot path).
    fn update_liveness(&mut self, region: RegionId, mutate: impl FnOnce(&mut RegionLiveness)) {
        let counters = self.liveness.entry(region).or_default();
        let was_live = counters.is_live();
        mutate(counters);
        let is_live = counters.is_live();
        if was_live != is_live {
            if is_live {
                self.live_set.insert(region);
            } else {
                self.live_set.remove(&region);
            }
        }
    }

    /// Set `id`'s completed bit (no-op if already set).
    fn insert_completed(&mut self, id: TaskId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.completed_bits[w] & mask == 0 {
            self.completed_bits[w] |= mask;
            self.completed_count += 1;
        }
    }

    /// Roll the graph back to a checkpointed execution frontier: exactly
    /// the tasks in `completed` stay [`TaskState::Completed`], and every
    /// other task — running, completed-since, failed or poisoned — is
    /// re-armed to [`TaskState::Pending`]/[`TaskState::Ready`] with its
    /// unmet-dependence count recomputed. Returns the tasks that are ready
    /// after the rollback, in submission order.
    ///
    /// This is the graph half of checkpoint/restart: the runtime records
    /// the completed set when it takes a checkpoint, and on an
    /// unrecoverable task failure restores it here instead of poisoning
    /// the whole downstream cone (`legato-runtime`'s resilience module is
    /// the caller). Work completed after the checkpoint is *discarded*
    /// and will be re-executed.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] if `completed` names a task outside the
    /// graph; [`CoreError::InvalidTransition`] if `completed` is not
    /// closed under dependences (a task is listed but one of its
    /// predecessors is not — such a frontier could never have been
    /// reached). On error the graph is unchanged.
    pub fn rollback(&mut self, completed: &[TaskId]) -> Result<Vec<TaskId>, CoreError> {
        let mut keep = vec![false; self.nodes.len()];
        for &id in completed {
            self.node(id)?;
            keep[id.index()] = true;
        }
        for &id in completed {
            if self.nodes[id.index()]
                .preds
                .iter()
                .any(|p| !keep[p.index()])
            {
                return Err(CoreError::InvalidTransition {
                    task: id,
                    reason: "checkpoint frontier is not closed under dependences",
                });
            }
        }
        self.ready_bits.iter_mut().for_each(|w| *w = 0);
        self.ready_count = 0;
        self.completed_bits.iter_mut().for_each(|w| *w = 0);
        self.completed_count = 0;
        self.liveness.clear();
        self.live_set.clear();
        let mut ready = Vec::new();
        for i in 0..self.nodes.len() {
            if keep[i] {
                self.states[i] = TaskState::Completed;
                self.insert_completed(TaskId(i as u64));
                continue;
            }
            let unmet = self.nodes[i]
                .preds
                .iter()
                .filter(|p| !keep[p.index()])
                .count();
            self.unmet[i] = unmet;
            if unmet == 0 {
                self.states[i] = TaskState::Ready;
                let id = TaskId(i as u64);
                self.insert_ready(id);
                ready.push(id);
            } else {
                self.states[i] = TaskState::Pending;
            }
        }
        // Rebuild the region-liveness counters wholesale: the rollback is
        // O(n) regardless, and every task is now either completed
        // (writes count) or pending/ready (reads outstanding).
        for (node, &completed) in self.nodes.iter().zip(&keep) {
            for &(region, mode) in &node.accesses {
                let live = self.liveness.entry(region).or_default();
                if completed && mode.writes() {
                    live.writers_done += 1;
                }
                if !completed && mode.reads() {
                    live.readers_outstanding += 1;
                }
            }
        }
        let live_now: Vec<RegionId> = self
            .liveness
            .iter()
            .filter(|(_, l)| l.is_live())
            .map(|(&r, _)| r)
            .collect();
        self.live_set.extend(live_now);
        Ok(ready)
    }

    /// Walk the dependence edges backwards from `id` and return the set of
    /// [`TaskState::Failed`] ancestors — the root causes of a poisoned task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn root_cause(&self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        self.node(id)?;
        let mut visited = vec![false; self.nodes.len()];
        let mut causes = Vec::new();
        let mut stack = vec![id];
        visited[id.index()] = true;
        while let Some(next) = stack.pop() {
            for &p in &self.nodes[next.index()].preds {
                if !visited[p.index()] {
                    visited[p.index()] = true;
                    if self.states[p.index()] == TaskState::Failed {
                        causes.push(p);
                    }
                    stack.push(p);
                }
            }
        }
        causes.sort_unstable();
        Ok(causes)
    }

    /// A topological order of all tasks, computed by indegree counting
    /// (Kahn's algorithm) with a smallest-id frontier.
    ///
    /// Because dependence edges always point from an earlier submission to
    /// a later one, the result coincides with submission order — but it is
    /// *derived* from the edges rather than assumed, so it stays correct
    /// for any acyclic edge set and doubles as a structural self-check.
    ///
    /// # Panics
    ///
    /// Panics if the edge set contains a cycle (impossible through the
    /// public API, which only creates forward edges).
    #[must_use]
    pub fn topological_order(&self) -> Vec<TaskId> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.nodes.len();
        let mut indegree: Vec<usize> = vec![0; n];
        for node in &self.nodes {
            for s in &node.succs {
                indegree[s.index()] += 1;
            }
        }
        let mut frontier: BinaryHeap<Reverse<TaskId>> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| Reverse(TaskId(i as u64)))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(id)) = frontier.pop() {
            order.push(id);
            for &s in &self.nodes[id.index()].succs {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    frontier.push(Reverse(s));
                }
            }
        }
        assert_eq!(order.len(), n, "dependence edges must form a DAG");
        order
    }

    /// Critical path under a per-task cost function: returns the total cost
    /// and the path itself (source → sink).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyGraph`] if the graph has no tasks.
    pub fn critical_path<F>(&self, cost: F) -> Result<(f64, Vec<TaskId>), CoreError>
    where
        F: Fn(TaskId, &TaskDescriptor) -> f64,
    {
        if self.nodes.is_empty() {
            return Err(CoreError::EmptyGraph);
        }
        let n = self.nodes.len();
        let mut dist = vec![0.0_f64; n];
        let mut best_pred: Vec<Option<TaskId>> = vec![None; n];
        for i in 0..n {
            let id = TaskId(i as u64);
            let c = cost(id, &self.nodes[i].descriptor);
            let mut incoming = 0.0_f64;
            for &p in &self.nodes[i].preds {
                if dist[p.index()] > incoming {
                    incoming = dist[p.index()];
                    best_pred[i] = Some(p);
                }
            }
            dist[i] = incoming + c;
        }
        let (mut at, mut total) = (TaskId(0), dist[0]);
        for (i, &d) in dist.iter().enumerate().skip(1) {
            if d > total {
                total = d;
                at = TaskId(i as u64);
            }
        }
        let mut path = vec![at];
        while let Some(p) = best_pred[at.index()] {
            path.push(p);
            at = p;
        }
        path.reverse();
        Ok((total, path))
    }

    /// Total work (sum of the cost function) across all tasks, for
    /// parallelism = work / critical-path calculations.
    #[must_use]
    pub fn total_cost<F>(&self, cost: F) -> f64
    where
        F: Fn(TaskId, &TaskDescriptor) -> f64,
    {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| cost(TaskId(i as u64), &n.descriptor))
            .sum()
    }

    fn release_successors(&mut self, id: TaskId, released: &mut Vec<TaskId>) {
        // Index iteration instead of cloning the successor list: this runs
        // once per completed task, on the engine's hottest path.
        for i in 0..self.nodes[id.index()].succs.len() {
            let s = self.nodes[id.index()].succs[i];
            if self.states[s.index()] != TaskState::Pending {
                continue;
            }
            self.unmet[s.index()] -= 1;
            if self.unmet[s.index()] == 0 {
                self.states[s.index()] = TaskState::Ready;
                self.insert_ready(s);
                released.push(s);
            }
        }
    }

    /// Set `id`'s ready bit (no-op if already set).
    fn insert_ready(&mut self, id: TaskId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.ready_bits[w] & mask == 0 {
            self.ready_bits[w] |= mask;
            self.ready_count += 1;
        }
    }

    /// Clear `id`'s ready bit (no-op if absent).
    fn remove_ready(&mut self, id: TaskId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.ready_bits[w] & mask != 0 {
            self.ready_bits[w] &= !mask;
            self.ready_count -= 1;
        }
    }

    fn node(&self, id: TaskId) -> Result<&Node, CoreError> {
        self.nodes.get(id.index()).ok_or(CoreError::UnknownTask(id))
    }
}

/// Materialize a per-task bitmap as a sorted `TaskId` list (`count` =
/// number of set bits, used to pre-size the output).
fn collect_bits(words: &[u64], count: usize) -> Vec<TaskId> {
    let mut out = Vec::with_capacity(count);
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as u64;
            out.push(TaskId((w as u64) * 64 + b));
            bits &= bits - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskDescriptor;

    fn desc(name: &'static str) -> TaskDescriptor {
        TaskDescriptor::named(name)
    }

    #[test]
    fn raw_dependence() {
        let mut g = TaskGraph::new();
        let w = g.add_task(desc("w"), [(0u64, AccessMode::Out)]);
        let r = g.add_task(desc("r"), [(0u64, AccessMode::In)]);
        assert_eq!(g.predecessors(r).unwrap(), &[w]);
        assert_eq!(g.successors(w).unwrap(), &[r]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn war_dependence() {
        let mut g = TaskGraph::new();
        let _w0 = g.add_task(desc("w0"), [(0u64, AccessMode::Out)]);
        let r = g.add_task(desc("r"), [(0u64, AccessMode::In)]);
        let w1 = g.add_task(desc("w1"), [(0u64, AccessMode::Out)]);
        // w1 must wait for the reader (WAR) and the previous writer (WAW).
        assert!(g.predecessors(w1).unwrap().contains(&r));
    }

    #[test]
    fn waw_dependence() {
        let mut g = TaskGraph::new();
        let w0 = g.add_task(desc("w0"), [(0u64, AccessMode::Out)]);
        let w1 = g.add_task(desc("w1"), [(0u64, AccessMode::Out)]);
        assert_eq!(g.predecessors(w1).unwrap(), &[w0]);
    }

    #[test]
    fn independent_readers_run_in_parallel() {
        let mut g = TaskGraph::new();
        let w = g.add_task(desc("w"), [(0u64, AccessMode::Out)]);
        let r1 = g.add_task(desc("r1"), [(0u64, AccessMode::In)]);
        let r2 = g.add_task(desc("r2"), [(0u64, AccessMode::In)]);
        g.complete(w).unwrap();
        let ready = g.ready();
        assert!(ready.contains(&r1) && ready.contains(&r2));
    }

    #[test]
    fn inout_chains_serialize() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::InOut)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::InOut)]);
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
        assert_eq!(g.predecessors(c).unwrap(), &[b]);
        assert_eq!(g.ready(), vec![a]);
    }

    #[test]
    fn completion_releases_in_order() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        assert_eq!(g.complete(a).unwrap(), vec![b]);
        assert_eq!(g.complete(b).unwrap(), vec![c]);
        assert_eq!(g.complete(c).unwrap(), vec![]);
        assert!(g.is_complete());
    }

    #[test]
    fn completing_pending_task_is_rejected() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert!(matches!(
            g.complete(b),
            Err(CoreError::InvalidTransition { .. })
        ));
    }

    #[test]
    fn double_completion_is_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.complete(a).unwrap();
        assert!(g.complete(a).is_err());
    }

    #[test]
    fn unknown_task_errors() {
        let g = TaskGraph::new();
        assert_eq!(
            g.state(TaskId(5)).unwrap_err(),
            CoreError::UnknownTask(TaskId(5))
        );
    }

    #[test]
    fn start_then_complete() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.start(a).unwrap();
        assert_eq!(g.state(a).unwrap(), TaskState::Running);
        assert!(g.start(a).is_err());
        g.complete(a).unwrap();
        assert_eq!(g.state(a).unwrap(), TaskState::Completed);
    }

    #[test]
    fn failure_poisons_descendants() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        let d = g.add_task(desc("d"), [(2u64, AccessMode::Out)]); // independent
        let poisoned = g.fail(a).unwrap();
        assert_eq!(poisoned, vec![b, c]);
        assert_eq!(g.state(d).unwrap(), TaskState::Ready);
        assert_eq!(g.state(a).unwrap(), TaskState::Failed);
        assert_eq!(g.state(c).unwrap(), TaskState::Poisoned);
    }

    #[test]
    fn root_cause_walks_back() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        let c = g.add_task(
            desc("c"),
            [
                (0u64, AccessMode::In),
                (1u64, AccessMode::In),
                (2u64, AccessMode::Out),
            ],
        );
        let d = g.add_task(desc("d"), [(2u64, AccessMode::In)]);
        g.fail(a).unwrap();
        let causes = g.root_cause(d).unwrap();
        assert_eq!(causes, vec![a]);
        assert!(!causes.contains(&b));
        assert!(!causes.contains(&c));
    }

    #[test]
    fn critical_path_diamond() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let _b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let _c = g.add_task(desc("c"), [(0u64, AccessMode::In), (2u64, AccessMode::Out)]);
        let d = g.add_task(desc("d"), [(1u64, AccessMode::In), (2u64, AccessMode::In)]);
        // b costs 5, everything else 1: critical path a→b→d = 7.
        let (len, path) = g
            .critical_path(|id, _| if id == TaskId(1) { 5.0 } else { 1.0 })
            .unwrap();
        assert!((len - 7.0).abs() < 1e-12);
        assert_eq!(path.first(), Some(&TaskId(0)));
        assert_eq!(path.last(), Some(&d));
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn critical_path_empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(g.critical_path(|_, _| 1.0), Err(CoreError::EmptyGraph));
    }

    #[test]
    fn total_cost_sums_all() {
        let mut g = TaskGraph::new();
        g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert!((g.total_cost(|_, _| 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accesses_are_recorded() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(7u64, AccessMode::InOut)]);
        assert_eq!(g.accesses(a).unwrap(), &[(RegionId(7), AccessMode::InOut)]);
    }

    #[test]
    fn submission_after_completion_sees_no_stale_dependence() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.complete(a).unwrap();
        // New reader depends on a completed writer: must be immediately ready.
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
    }

    #[test]
    fn ready_set_is_maintained_incrementally() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(2u64, AccessMode::Out)]);
        assert_eq!(g.ready(), vec![a, c]);
        assert_eq!(g.ready_count(), 2);
        g.start(a).unwrap();
        assert_eq!(g.ready(), vec![c], "running tasks leave the ready set");
        g.complete(a).unwrap();
        assert_eq!(g.ready(), vec![b, c], "release inserts in id order");
        g.complete(c).unwrap();
        g.fail(b).unwrap();
        assert!(g.ready().is_empty());
        assert_eq!(g.ready_count(), 0);
    }

    #[test]
    fn failing_a_ready_task_clears_it_from_ready_set() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        g.fail(a).unwrap();
        assert_eq!(g.ready(), vec![b]);
    }

    #[test]
    fn topological_order_matches_submission_order() {
        let mut g = TaskGraph::new();
        for i in 0..50u64 {
            g.add_task(desc("t"), [(i % 7, AccessMode::InOut)]);
        }
        let order = g.topological_order();
        assert_eq!(order, (0..50).map(TaskId).collect::<Vec<_>>());
        // And it is a genuine topological order: preds before succs.
        let pos: Vec<usize> = order.iter().map(|t| t.index()).collect();
        for i in 0..g.len() {
            let id = TaskId(i as u64);
            for &p in g.predecessors(id).unwrap() {
                assert!(pos[p.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn duplicate_region_access_deduplicates_edges() {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            desc("a"),
            [(0u64, AccessMode::Out), (1u64, AccessMode::Out)],
        );
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::In)]);
        // Two shared regions but only one edge a→b.
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
        assert_eq!(g.edge_count(), 1);
    }

    /// Chain a → b → c: complete all three, roll back to the frontier
    /// after `a`, and the graph re-arms `b` (ready) and `c` (pending).
    #[test]
    fn rollback_rearms_completed_tasks() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::In)]);
        for t in [a, b, c] {
            g.complete(t).unwrap();
        }
        assert!(g.is_complete());
        let ready = g.rollback(&[a]).unwrap();
        assert_eq!(ready, vec![b]);
        assert_eq!(g.state(a).unwrap(), TaskState::Completed);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.state(c).unwrap(), TaskState::Pending);
        assert_eq!(g.completed_count(), 1);
        assert_eq!(g.ready(), vec![b]);
        // Execution proceeds normally after the rollback.
        assert_eq!(g.complete(b).unwrap(), vec![c]);
        g.complete(c).unwrap();
        assert!(g.is_complete());
    }

    /// Rollback un-fails a failed task and un-poisons its cone.
    #[test]
    fn rollback_recovers_failed_and_poisoned_tasks() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::In)]);
        g.complete(a).unwrap();
        g.fail(b).unwrap();
        assert_eq!(g.state(c).unwrap(), TaskState::Poisoned);
        let ready = g.rollback(&[a]).unwrap();
        assert_eq!(ready, vec![b]);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.state(c).unwrap(), TaskState::Pending);
    }

    /// Rollback to the empty frontier restarts the whole graph.
    #[test]
    fn rollback_to_empty_frontier_restarts_everything() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        g.complete(a).unwrap();
        g.complete(b).unwrap();
        let ready = g.rollback(&[]).unwrap();
        assert_eq!(ready, vec![a]);
        assert_eq!(g.completed_count(), 0);
        assert_eq!(g.state(b).unwrap(), TaskState::Pending);
    }

    /// Naive recomputation of the live-region set (the pre-incremental
    /// definition): regions written by a completed task and read by at
    /// least one pending/ready/running task. The incremental counters
    /// must agree with this after every transition.
    fn naive_live(g: &TaskGraph) -> HashSet<RegionId> {
        let mut written_by_done: HashSet<RegionId> = HashSet::new();
        let mut read_by_pending: HashSet<RegionId> = HashSet::new();
        for i in 0..g.len() {
            let id = TaskId(i as u64);
            let state = g.state(id).unwrap();
            for &(r, m) in g.accesses(id).unwrap() {
                match state {
                    TaskState::Completed => {
                        if m.writes() {
                            written_by_done.insert(r);
                        }
                    }
                    TaskState::Failed | TaskState::Poisoned => {}
                    _ => {
                        if m.reads() {
                            read_by_pending.insert(r);
                        }
                    }
                }
            }
        }
        written_by_done
            .intersection(&read_by_pending)
            .copied()
            .collect()
    }

    fn incremental_live(g: &TaskGraph) -> HashSet<RegionId> {
        g.live_regions().collect()
    }

    #[test]
    fn live_regions_match_naive_recompute_through_lifecycle() {
        let mut g = TaskGraph::new();
        // Pipeline a →(r0)→ b →(r1)→ c, plus a diamond d/e over r2 and an
        // independent chain f →(r3)→ h that will fail mid-way.
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let _c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        let d = g.add_task(desc("d"), [(2u64, AccessMode::InOut)]);
        let _e = g.add_task(desc("e"), [(2u64, AccessMode::InOut)]);
        let f = g.add_task(desc("f"), [(3u64, AccessMode::Out)]);
        let _h = g.add_task(desc("h"), [(3u64, AccessMode::In)]);
        assert_eq!(incremental_live(&g), naive_live(&g));

        g.complete(a).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));
        assert_eq!(incremental_live(&g), HashSet::from([RegionId(0)]));

        g.start(b).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));
        g.complete(b).unwrap();
        // r0 is dead (no reader left), r1 is live.
        assert_eq!(incremental_live(&g), HashSet::from([RegionId(1)]));
        assert_eq!(incremental_live(&g), naive_live(&g));

        g.complete(d).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));

        // Failing f poisons h: region 3 never becomes live, and the
        // poisoned reader must not count as outstanding.
        g.fail(f).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));
        assert_eq!(g.live_region_count(), incremental_live(&g).len());
    }

    #[test]
    fn live_regions_rebuilt_by_rollback() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        for t in [a, b, c] {
            g.complete(t).unwrap();
        }
        assert_eq!(incremental_live(&g), naive_live(&g));
        g.rollback(&[a]).unwrap();
        assert_eq!(incremental_live(&g), HashSet::from([RegionId(0)]));
        assert_eq!(incremental_live(&g), naive_live(&g));
        // And after re-execution the structures stay consistent.
        g.complete(b).unwrap();
        g.complete(c).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));
        assert!(incremental_live(&g).is_empty());
    }

    #[test]
    fn completed_accessor_is_incremental_and_sorted() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(2u64, AccessMode::Out)]);
        assert!(g.completed().is_empty());
        // Complete out of id order: the view stays sorted by id.
        g.complete(c).unwrap();
        g.complete(a).unwrap();
        assert_eq!(g.completed(), &[a, c]);
        g.complete(b).unwrap();
        assert_eq!(g.completed(), &[a, b, c]);
        assert_eq!(g.completed_count(), 3);
        // Rollback resets the list to the restored frontier.
        g.rollback(&[a]).unwrap();
        assert_eq!(g.completed(), &[a]);
    }

    #[test]
    fn complete_into_appends_to_caller_buffer() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        let mut buf = vec![TaskId(99)];
        g.complete_into(a, &mut buf).unwrap();
        assert_eq!(buf, vec![TaskId(99), b], "appends, never clears");
        assert!(g.complete_into(a, &mut buf).is_err());
        assert_eq!(buf.len(), 2, "error leaves the buffer untouched");
    }

    /// A frontier that is not closed under dependences is rejected and
    /// the graph is left untouched.
    #[test]
    fn rollback_rejects_unreachable_frontier() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        g.complete(a).unwrap();
        g.complete(b).unwrap();
        // b completed without a: impossible frontier.
        let err = g.rollback(&[b]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidTransition { task, .. } if task == b));
        assert_eq!(g.completed_count(), 2, "failed rollback must not mutate");
        assert!(matches!(
            g.rollback(&[TaskId(99)]),
            Err(CoreError::UnknownTask(TaskId(99)))
        ));
    }
}
