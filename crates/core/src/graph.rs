//! Dataflow task graph with OmpSs-style dependence inference.
//!
//! Tasks are appended in program order with their `(region, mode)` access
//! declarations; the graph inserts read-after-write, write-after-read and
//! write-after-write edges automatically. Because edges always point from an
//! earlier submission to a later one, the graph is acyclic by construction.
//!
//! Beyond scheduling (ready set maintenance), the graph supports the two
//! fault-tolerance analyses the paper assigns to the task model (§I):
//!
//! * **error propagation across task boundaries** — [`TaskGraph::fail`]
//!   poisons every transitive successor of a failed task;
//! * **failure root-cause analysis** — [`TaskGraph::root_cause`] walks the
//!   dependence edges backwards from a poisoned task to the failed
//!   ancestors that explain it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::task::{AccessMode, RegionId, TaskDescriptor, TaskId};

/// Lifecycle state of a task inside the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Waiting for predecessors.
    Pending,
    /// All predecessors completed; eligible to run.
    Ready,
    /// Claimed by a scheduler (between [`TaskGraph::start`] and
    /// [`TaskGraph::complete`]).
    Running,
    /// Finished successfully.
    Completed,
    /// Finished with an error.
    Failed,
    /// A transitive predecessor failed; the task's inputs are suspect.
    Poisoned,
}

impl TaskState {
    /// Whether the task has reached a terminal state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Completed | TaskState::Failed | TaskState::Poisoned
        )
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    descriptor: TaskDescriptor,
    state: TaskState,
    preds: Vec<TaskId>,
    succs: Vec<TaskId>,
    unmet: usize,
    accesses: Vec<(RegionId, AccessMode)>,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RegionHistory {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// A dynamic dataflow DAG over [`TaskDescriptor`]s.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    nodes: Vec<Node>,
    regions: HashMap<RegionId, RegionHistory>,
    edge_count: usize,
    completed: usize,
    /// Tasks currently in [`TaskState::Ready`], kept sorted by id so the
    /// ready view stays in submission order without scanning all nodes.
    ready_set: Vec<TaskId>,
}

impl TaskGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Number of tasks ever submitted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no task has been submitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of dependence edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of tasks in [`TaskState::Completed`].
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed
    }

    /// Whether every task completed successfully.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed == self.nodes.len()
    }

    /// Submit a task with its data-access declarations, returning its id.
    ///
    /// Dependence edges are inferred against previously submitted tasks:
    ///
    /// * a read of region `r` depends on the last writer of `r` (RAW);
    /// * a write of `r` depends on the last writer (WAW) **and** on every
    ///   reader since that write (WAR).
    ///
    /// Duplicate edges between a task pair are coalesced.
    pub fn add_task<I, R>(&mut self, descriptor: TaskDescriptor, accesses: I) -> TaskId
    where
        I: IntoIterator<Item = (R, AccessMode)>,
        R: Into<RegionId>,
    {
        let id = TaskId(self.nodes.len() as u64);
        let accesses: Vec<(RegionId, AccessMode)> =
            accesses.into_iter().map(|(r, m)| (r.into(), m)).collect();

        let mut preds: Vec<TaskId> = Vec::new();
        for &(region, mode) in &accesses {
            let hist = self.regions.entry(region).or_default();
            if mode.reads() {
                if let Some(w) = hist.last_writer {
                    preds.push(w);
                }
            }
            if mode.writes() {
                if let Some(w) = hist.last_writer {
                    preds.push(w);
                }
                preds.extend(hist.readers_since_write.iter().copied());
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        // Only count predecessors that are still outstanding.
        let unmet = preds
            .iter()
            .filter(|p| !self.nodes[p.index()].state.is_terminal())
            .count();

        let state = if unmet == 0 {
            self.ready_set.push(id); // ids are dense: push keeps the set sorted
            TaskState::Ready
        } else {
            TaskState::Pending
        };
        for &p in &preds {
            self.nodes[p.index()].succs.push(id);
        }
        self.edge_count += preds.len();

        // Update region histories *after* computing dependences.
        for &(region, mode) in &accesses {
            let hist = self.regions.entry(region).or_default();
            if mode.writes() {
                hist.last_writer = Some(id);
                hist.readers_since_write.clear();
            }
            if mode.reads() && !mode.writes() {
                hist.readers_since_write.push(id);
            }
        }

        self.nodes.push(Node {
            descriptor,
            state,
            preds,
            succs: Vec::new(),
            unmet,
            accesses,
        });
        id
    }

    /// Descriptor of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn descriptor(&self, id: TaskId) -> Result<&TaskDescriptor, CoreError> {
        self.node(id).map(|n| &n.descriptor)
    }

    /// Current lifecycle state of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn state(&self, id: TaskId) -> Result<TaskState, CoreError> {
        self.node(id).map(|n| n.state)
    }

    /// Direct predecessors (dependences) of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn predecessors(&self, id: TaskId) -> Result<&[TaskId], CoreError> {
        self.node(id).map(|n| n.preds.as_slice())
    }

    /// Direct successors (dependents) of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn successors(&self, id: TaskId) -> Result<&[TaskId], CoreError> {
        self.node(id).map(|n| n.succs.as_slice())
    }

    /// The `(region, mode)` declarations a task was submitted with.
    ///
    /// The FTI integration uses this to checkpoint exactly the data declared
    /// at task entry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn accesses(&self, id: TaskId) -> Result<&[(RegionId, AccessMode)], CoreError> {
        self.node(id).map(|n| n.accesses.as_slice())
    }

    /// All tasks currently in [`TaskState::Ready`], in submission order.
    ///
    /// The ready set is maintained incrementally by
    /// [`TaskGraph::add_task`], [`TaskGraph::start`],
    /// [`TaskGraph::complete`] and [`TaskGraph::fail`], so this is O(ready)
    /// rather than a scan over every node — the property the event-driven
    /// runtime relies on for large graphs.
    #[must_use]
    pub fn ready(&self) -> Vec<TaskId> {
        self.ready_set.clone()
    }

    /// Number of tasks currently ready, without allocating.
    #[must_use]
    pub fn ready_count(&self) -> usize {
        self.ready_set.len()
    }

    /// Mark a ready task as running (claimed by a worker).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task is not ready.
    pub fn start(&mut self, id: TaskId) -> Result<(), CoreError> {
        let node = self.node_mut(id)?;
        if node.state != TaskState::Ready {
            return Err(CoreError::InvalidTransition {
                task: id,
                reason: "task is not ready",
            });
        }
        node.state = TaskState::Running;
        self.remove_ready(id);
        Ok(())
    }

    /// Complete a task, returning the tasks that became ready.
    ///
    /// Accepts tasks in `Ready` or `Running` state (schedulers that do not
    /// bother with [`TaskGraph::start`] may complete directly).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task is pending or terminal.
    pub fn complete(&mut self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        {
            let node = self.node_mut(id)?;
            match node.state {
                TaskState::Ready | TaskState::Running => {
                    let was_ready = node.state == TaskState::Ready;
                    node.state = TaskState::Completed;
                    if was_ready {
                        self.remove_ready(id);
                    }
                }
                TaskState::Pending => {
                    return Err(CoreError::InvalidTransition {
                        task: id,
                        reason: "task still has unmet dependences",
                    })
                }
                _ => {
                    return Err(CoreError::InvalidTransition {
                        task: id,
                        reason: "task already terminal",
                    })
                }
            }
        }
        self.completed += 1;
        Ok(self.release_successors(id))
    }

    /// Fail a task and poison all transitive successors whose inputs are now
    /// suspect ("detecting error propagation across task boundaries",
    /// paper §I). Returns the poisoned tasks in topological order.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task already terminal.
    pub fn fail(&mut self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        {
            let node = self.node_mut(id)?;
            if node.state.is_terminal() {
                return Err(CoreError::InvalidTransition {
                    task: id,
                    reason: "task already terminal",
                });
            }
            let was_ready = node.state == TaskState::Ready;
            node.state = TaskState::Failed;
            if was_ready {
                self.remove_ready(id);
            }
        }
        let mut poisoned = Vec::new();
        let mut stack: Vec<TaskId> = self.nodes[id.index()].succs.clone();
        while let Some(next) = stack.pop() {
            let node = &mut self.nodes[next.index()];
            if node.state == TaskState::Poisoned || node.state == TaskState::Failed {
                continue;
            }
            let was_ready = node.state == TaskState::Ready;
            node.state = TaskState::Poisoned;
            if was_ready {
                self.remove_ready(next);
            }
            poisoned.push(next);
            stack.extend(self.nodes[next.index()].succs.iter().copied());
        }
        poisoned.sort_unstable();
        poisoned.dedup();
        Ok(poisoned)
    }

    /// Roll the graph back to a checkpointed execution frontier: exactly
    /// the tasks in `completed` stay [`TaskState::Completed`], and every
    /// other task — running, completed-since, failed or poisoned — is
    /// re-armed to [`TaskState::Pending`]/[`TaskState::Ready`] with its
    /// unmet-dependence count recomputed. Returns the tasks that are ready
    /// after the rollback, in submission order.
    ///
    /// This is the graph half of checkpoint/restart: the runtime records
    /// the completed set when it takes a checkpoint, and on an
    /// unrecoverable task failure restores it here instead of poisoning
    /// the whole downstream cone (`legato-runtime`'s resilience module is
    /// the caller). Work completed after the checkpoint is *discarded*
    /// and will be re-executed.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] if `completed` names a task outside the
    /// graph; [`CoreError::InvalidTransition`] if `completed` is not
    /// closed under dependences (a task is listed but one of its
    /// predecessors is not — such a frontier could never have been
    /// reached). On error the graph is unchanged.
    pub fn rollback(&mut self, completed: &[TaskId]) -> Result<Vec<TaskId>, CoreError> {
        let mut keep = vec![false; self.nodes.len()];
        for &id in completed {
            self.node(id)?;
            keep[id.index()] = true;
        }
        for &id in completed {
            if self.nodes[id.index()]
                .preds
                .iter()
                .any(|p| !keep[p.index()])
            {
                return Err(CoreError::InvalidTransition {
                    task: id,
                    reason: "checkpoint frontier is not closed under dependences",
                });
            }
        }
        self.ready_set.clear();
        self.completed = 0;
        let mut ready = Vec::new();
        for i in 0..self.nodes.len() {
            if keep[i] {
                self.nodes[i].state = TaskState::Completed;
                self.completed += 1;
                continue;
            }
            let unmet = self.nodes[i]
                .preds
                .iter()
                .filter(|p| !keep[p.index()])
                .count();
            let node = &mut self.nodes[i];
            node.unmet = unmet;
            if unmet == 0 {
                node.state = TaskState::Ready;
                let id = TaskId(i as u64);
                self.ready_set.push(id); // index order keeps the set sorted
                ready.push(id);
            } else {
                node.state = TaskState::Pending;
            }
        }
        Ok(ready)
    }

    /// Walk the dependence edges backwards from `id` and return the set of
    /// [`TaskState::Failed`] ancestors — the root causes of a poisoned task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn root_cause(&self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        self.node(id)?;
        let mut visited = vec![false; self.nodes.len()];
        let mut causes = Vec::new();
        let mut stack = vec![id];
        visited[id.index()] = true;
        while let Some(next) = stack.pop() {
            for &p in &self.nodes[next.index()].preds {
                if !visited[p.index()] {
                    visited[p.index()] = true;
                    if self.nodes[p.index()].state == TaskState::Failed {
                        causes.push(p);
                    }
                    stack.push(p);
                }
            }
        }
        causes.sort_unstable();
        Ok(causes)
    }

    /// A topological order of all tasks, computed by indegree counting
    /// (Kahn's algorithm) with a smallest-id frontier.
    ///
    /// Because dependence edges always point from an earlier submission to
    /// a later one, the result coincides with submission order — but it is
    /// *derived* from the edges rather than assumed, so it stays correct
    /// for any acyclic edge set and doubles as a structural self-check.
    ///
    /// # Panics
    ///
    /// Panics if the edge set contains a cycle (impossible through the
    /// public API, which only creates forward edges).
    #[must_use]
    pub fn topological_order(&self) -> Vec<TaskId> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.nodes.len();
        let mut indegree: Vec<usize> = vec![0; n];
        for node in &self.nodes {
            for s in &node.succs {
                indegree[s.index()] += 1;
            }
        }
        let mut frontier: BinaryHeap<Reverse<TaskId>> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| Reverse(TaskId(i as u64)))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(id)) = frontier.pop() {
            order.push(id);
            for &s in &self.nodes[id.index()].succs {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    frontier.push(Reverse(s));
                }
            }
        }
        assert_eq!(order.len(), n, "dependence edges must form a DAG");
        order
    }

    /// Critical path under a per-task cost function: returns the total cost
    /// and the path itself (source → sink).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyGraph`] if the graph has no tasks.
    pub fn critical_path<F>(&self, cost: F) -> Result<(f64, Vec<TaskId>), CoreError>
    where
        F: Fn(TaskId, &TaskDescriptor) -> f64,
    {
        if self.nodes.is_empty() {
            return Err(CoreError::EmptyGraph);
        }
        let n = self.nodes.len();
        let mut dist = vec![0.0_f64; n];
        let mut best_pred: Vec<Option<TaskId>> = vec![None; n];
        for i in 0..n {
            let id = TaskId(i as u64);
            let c = cost(id, &self.nodes[i].descriptor);
            let mut incoming = 0.0_f64;
            for &p in &self.nodes[i].preds {
                if dist[p.index()] > incoming {
                    incoming = dist[p.index()];
                    best_pred[i] = Some(p);
                }
            }
            dist[i] = incoming + c;
        }
        let (mut at, mut total) = (TaskId(0), dist[0]);
        for (i, &d) in dist.iter().enumerate().skip(1) {
            if d > total {
                total = d;
                at = TaskId(i as u64);
            }
        }
        let mut path = vec![at];
        while let Some(p) = best_pred[at.index()] {
            path.push(p);
            at = p;
        }
        path.reverse();
        Ok((total, path))
    }

    /// Total work (sum of the cost function) across all tasks, for
    /// parallelism = work / critical-path calculations.
    #[must_use]
    pub fn total_cost<F>(&self, cost: F) -> f64
    where
        F: Fn(TaskId, &TaskDescriptor) -> f64,
    {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| cost(TaskId(i as u64), &n.descriptor))
            .sum()
    }

    fn release_successors(&mut self, id: TaskId) -> Vec<TaskId> {
        let succs = self.nodes[id.index()].succs.clone();
        let mut released = Vec::new();
        for s in succs {
            let node = &mut self.nodes[s.index()];
            if node.state != TaskState::Pending {
                continue;
            }
            node.unmet -= 1;
            if node.unmet == 0 {
                node.state = TaskState::Ready;
                self.insert_ready(s);
                released.push(s);
            }
        }
        released
    }

    /// Insert `id` into the sorted ready set (no-op if already present).
    fn insert_ready(&mut self, id: TaskId) {
        if let Err(pos) = self.ready_set.binary_search(&id) {
            self.ready_set.insert(pos, id);
        }
    }

    /// Remove `id` from the sorted ready set (no-op if absent).
    fn remove_ready(&mut self, id: TaskId) {
        if let Ok(pos) = self.ready_set.binary_search(&id) {
            self.ready_set.remove(pos);
        }
    }

    fn node(&self, id: TaskId) -> Result<&Node, CoreError> {
        self.nodes.get(id.index()).ok_or(CoreError::UnknownTask(id))
    }

    fn node_mut(&mut self, id: TaskId) -> Result<&mut Node, CoreError> {
        self.nodes
            .get_mut(id.index())
            .ok_or(CoreError::UnknownTask(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskDescriptor;

    fn desc(name: &str) -> TaskDescriptor {
        TaskDescriptor::named(name)
    }

    #[test]
    fn raw_dependence() {
        let mut g = TaskGraph::new();
        let w = g.add_task(desc("w"), [(0u64, AccessMode::Out)]);
        let r = g.add_task(desc("r"), [(0u64, AccessMode::In)]);
        assert_eq!(g.predecessors(r).unwrap(), &[w]);
        assert_eq!(g.successors(w).unwrap(), &[r]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn war_dependence() {
        let mut g = TaskGraph::new();
        let _w0 = g.add_task(desc("w0"), [(0u64, AccessMode::Out)]);
        let r = g.add_task(desc("r"), [(0u64, AccessMode::In)]);
        let w1 = g.add_task(desc("w1"), [(0u64, AccessMode::Out)]);
        // w1 must wait for the reader (WAR) and the previous writer (WAW).
        assert!(g.predecessors(w1).unwrap().contains(&r));
    }

    #[test]
    fn waw_dependence() {
        let mut g = TaskGraph::new();
        let w0 = g.add_task(desc("w0"), [(0u64, AccessMode::Out)]);
        let w1 = g.add_task(desc("w1"), [(0u64, AccessMode::Out)]);
        assert_eq!(g.predecessors(w1).unwrap(), &[w0]);
    }

    #[test]
    fn independent_readers_run_in_parallel() {
        let mut g = TaskGraph::new();
        let w = g.add_task(desc("w"), [(0u64, AccessMode::Out)]);
        let r1 = g.add_task(desc("r1"), [(0u64, AccessMode::In)]);
        let r2 = g.add_task(desc("r2"), [(0u64, AccessMode::In)]);
        g.complete(w).unwrap();
        let ready = g.ready();
        assert!(ready.contains(&r1) && ready.contains(&r2));
    }

    #[test]
    fn inout_chains_serialize() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::InOut)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::InOut)]);
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
        assert_eq!(g.predecessors(c).unwrap(), &[b]);
        assert_eq!(g.ready(), vec![a]);
    }

    #[test]
    fn completion_releases_in_order() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        assert_eq!(g.complete(a).unwrap(), vec![b]);
        assert_eq!(g.complete(b).unwrap(), vec![c]);
        assert_eq!(g.complete(c).unwrap(), vec![]);
        assert!(g.is_complete());
    }

    #[test]
    fn completing_pending_task_is_rejected() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert!(matches!(
            g.complete(b),
            Err(CoreError::InvalidTransition { .. })
        ));
    }

    #[test]
    fn double_completion_is_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.complete(a).unwrap();
        assert!(g.complete(a).is_err());
    }

    #[test]
    fn unknown_task_errors() {
        let g = TaskGraph::new();
        assert_eq!(
            g.state(TaskId(5)).unwrap_err(),
            CoreError::UnknownTask(TaskId(5))
        );
    }

    #[test]
    fn start_then_complete() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.start(a).unwrap();
        assert_eq!(g.state(a).unwrap(), TaskState::Running);
        assert!(g.start(a).is_err());
        g.complete(a).unwrap();
        assert_eq!(g.state(a).unwrap(), TaskState::Completed);
    }

    #[test]
    fn failure_poisons_descendants() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        let d = g.add_task(desc("d"), [(2u64, AccessMode::Out)]); // independent
        let poisoned = g.fail(a).unwrap();
        assert_eq!(poisoned, vec![b, c]);
        assert_eq!(g.state(d).unwrap(), TaskState::Ready);
        assert_eq!(g.state(a).unwrap(), TaskState::Failed);
        assert_eq!(g.state(c).unwrap(), TaskState::Poisoned);
    }

    #[test]
    fn root_cause_walks_back() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        let c = g.add_task(
            desc("c"),
            [
                (0u64, AccessMode::In),
                (1u64, AccessMode::In),
                (2u64, AccessMode::Out),
            ],
        );
        let d = g.add_task(desc("d"), [(2u64, AccessMode::In)]);
        g.fail(a).unwrap();
        let causes = g.root_cause(d).unwrap();
        assert_eq!(causes, vec![a]);
        assert!(!causes.contains(&b));
        assert!(!causes.contains(&c));
    }

    #[test]
    fn critical_path_diamond() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let _b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let _c = g.add_task(desc("c"), [(0u64, AccessMode::In), (2u64, AccessMode::Out)]);
        let d = g.add_task(desc("d"), [(1u64, AccessMode::In), (2u64, AccessMode::In)]);
        // b costs 5, everything else 1: critical path a→b→d = 7.
        let (len, path) = g
            .critical_path(|id, _| if id == TaskId(1) { 5.0 } else { 1.0 })
            .unwrap();
        assert!((len - 7.0).abs() < 1e-12);
        assert_eq!(path.first(), Some(&TaskId(0)));
        assert_eq!(path.last(), Some(&d));
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn critical_path_empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(g.critical_path(|_, _| 1.0), Err(CoreError::EmptyGraph));
    }

    #[test]
    fn total_cost_sums_all() {
        let mut g = TaskGraph::new();
        g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert!((g.total_cost(|_, _| 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accesses_are_recorded() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(7u64, AccessMode::InOut)]);
        assert_eq!(g.accesses(a).unwrap(), &[(RegionId(7), AccessMode::InOut)]);
    }

    #[test]
    fn submission_after_completion_sees_no_stale_dependence() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.complete(a).unwrap();
        // New reader depends on a completed writer: must be immediately ready.
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
    }

    #[test]
    fn ready_set_is_maintained_incrementally() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(2u64, AccessMode::Out)]);
        assert_eq!(g.ready(), vec![a, c]);
        assert_eq!(g.ready_count(), 2);
        g.start(a).unwrap();
        assert_eq!(g.ready(), vec![c], "running tasks leave the ready set");
        g.complete(a).unwrap();
        assert_eq!(g.ready(), vec![b, c], "release inserts in id order");
        g.complete(c).unwrap();
        g.fail(b).unwrap();
        assert!(g.ready().is_empty());
        assert_eq!(g.ready_count(), 0);
    }

    #[test]
    fn failing_a_ready_task_clears_it_from_ready_set() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        g.fail(a).unwrap();
        assert_eq!(g.ready(), vec![b]);
    }

    #[test]
    fn topological_order_matches_submission_order() {
        let mut g = TaskGraph::new();
        for i in 0..50u64 {
            g.add_task(desc("t"), [(i % 7, AccessMode::InOut)]);
        }
        let order = g.topological_order();
        assert_eq!(order, (0..50).map(TaskId).collect::<Vec<_>>());
        // And it is a genuine topological order: preds before succs.
        let pos: Vec<usize> = order.iter().map(|t| t.index()).collect();
        for i in 0..g.len() {
            let id = TaskId(i as u64);
            for &p in g.predecessors(id).unwrap() {
                assert!(pos[p.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn duplicate_region_access_deduplicates_edges() {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            desc("a"),
            [(0u64, AccessMode::Out), (1u64, AccessMode::Out)],
        );
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::In)]);
        // Two shared regions but only one edge a→b.
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
        assert_eq!(g.edge_count(), 1);
    }

    /// Chain a → b → c: complete all three, roll back to the frontier
    /// after `a`, and the graph re-arms `b` (ready) and `c` (pending).
    #[test]
    fn rollback_rearms_completed_tasks() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::In)]);
        for t in [a, b, c] {
            g.complete(t).unwrap();
        }
        assert!(g.is_complete());
        let ready = g.rollback(&[a]).unwrap();
        assert_eq!(ready, vec![b]);
        assert_eq!(g.state(a).unwrap(), TaskState::Completed);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.state(c).unwrap(), TaskState::Pending);
        assert_eq!(g.completed_count(), 1);
        assert_eq!(g.ready(), vec![b]);
        // Execution proceeds normally after the rollback.
        assert_eq!(g.complete(b).unwrap(), vec![c]);
        g.complete(c).unwrap();
        assert!(g.is_complete());
    }

    /// Rollback un-fails a failed task and un-poisons its cone.
    #[test]
    fn rollback_recovers_failed_and_poisoned_tasks() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::In)]);
        g.complete(a).unwrap();
        g.fail(b).unwrap();
        assert_eq!(g.state(c).unwrap(), TaskState::Poisoned);
        let ready = g.rollback(&[a]).unwrap();
        assert_eq!(ready, vec![b]);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.state(c).unwrap(), TaskState::Pending);
    }

    /// Rollback to the empty frontier restarts the whole graph.
    #[test]
    fn rollback_to_empty_frontier_restarts_everything() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        g.complete(a).unwrap();
        g.complete(b).unwrap();
        let ready = g.rollback(&[]).unwrap();
        assert_eq!(ready, vec![a]);
        assert_eq!(g.completed_count(), 0);
        assert_eq!(g.state(b).unwrap(), TaskState::Pending);
    }

    /// A frontier that is not closed under dependences is rejected and
    /// the graph is left untouched.
    #[test]
    fn rollback_rejects_unreachable_frontier() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        g.complete(a).unwrap();
        g.complete(b).unwrap();
        // b completed without a: impossible frontier.
        let err = g.rollback(&[b]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidTransition { task, .. } if task == b));
        assert_eq!(g.completed_count(), 2, "failed rollback must not mutate");
        assert!(matches!(
            g.rollback(&[TaskId(99)]),
            Err(CoreError::UnknownTask(TaskId(99)))
        ));
    }
}
