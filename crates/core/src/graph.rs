//! Dataflow task graph with OmpSs-style dependence inference.
//!
//! Tasks are appended in program order with their `(region, mode)` access
//! declarations; the graph inserts read-after-write, write-after-read and
//! write-after-write edges automatically. Because edges always point from an
//! earlier submission to a later one, the graph is acyclic by construction.
//!
//! Beyond scheduling (ready set maintenance), the graph supports the two
//! fault-tolerance analyses the paper assigns to the task model (§I):
//!
//! * **error propagation across task boundaries** — [`TaskGraph::fail`]
//!   poisons every transitive successor of a failed task;
//! * **failure root-cause analysis** — [`TaskGraph::root_cause`] walks the
//!   dependence edges backwards from a poisoned task to the failed
//!   ancestors that explain it.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::task::{AccessMode, RegionId, TaskDescriptor, TaskId};

/// Lifecycle state of a task inside the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Waiting for predecessors.
    Pending,
    /// All predecessors completed; eligible to run.
    Ready,
    /// Claimed by a scheduler (between [`TaskGraph::start`] and
    /// [`TaskGraph::complete`]).
    Running,
    /// Finished successfully.
    Completed,
    /// Finished with an error.
    Failed,
    /// A transitive predecessor failed; the task's inputs are suspect.
    Poisoned,
}

impl TaskState {
    /// Whether the task has reached a terminal state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Completed | TaskState::Failed | TaskState::Poisoned
        )
    }
}

/// Half-open window into one of the graph's flat arenas.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Span {
    start: usize,
    len: usize,
}

impl Span {
    #[inline]
    fn range(self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// Successor window with growth capacity: streaming submission cannot
/// know a task's out-degree in advance, so successor spans relocate to
/// the end of the arena with doubled capacity when they fill (amortized
/// O(1) per edge, like `Vec` push but without a heap allocation per
/// task). [`GraphBuilder`] bypasses the growth path entirely with an
/// exactly-sized two-pass layout.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct SuccSpan {
    start: usize,
    len: usize,
    cap: usize,
}

/// Cold per-task data: looked up once per lifecycle phase. The *hot*
/// per-task fields the executors touch on every event — lifecycle state
/// and unmet-dependence count — live in dense parallel arrays on
/// [`TaskGraph`] (`states`, `unmet`), so the engine's readiness-order
/// (i.e. random-order) walks stay cache-resident instead of dragging a
/// full node struct through the cache per touch. Edge and access lists
/// are spans into shared flat arenas (CSR layout) rather than three
/// heap `Vec`s per task — a 1M-task build performs a handful of arena
/// growths instead of millions of small allocations.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    descriptor: TaskDescriptor,
    preds: Span,
    succs: SuccSpan,
    accesses: Span,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RegionHistory {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Per-region liveness counters, maintained incrementally on every task
/// state transition. A region is *live* — must be checkpointed at the
/// current frontier — iff `writers_done ≥ 1` (a completed task produced
/// it) and `readers_outstanding ≥ 1` (an unfinished task still needs it).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct RegionLiveness {
    /// Completed tasks (access declarations) that write the region.
    writers_done: usize,
    /// Read declarations by tasks in `Pending`/`Ready`/`Running` state.
    readers_outstanding: usize,
}

impl RegionLiveness {
    fn is_live(self) -> bool {
        self.writers_done >= 1 && self.readers_outstanding >= 1
    }
}

/// A dynamic dataflow DAG over [`TaskDescriptor`]s.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    nodes: Vec<Node>,
    /// Lifecycle state per task (parallel to `nodes`) — the hottest
    /// field in the graph, touched 3–5 times per task per run.
    states: Vec<TaskState>,
    /// Outstanding-dependence count per task (parallel to `nodes`).
    unmet: Vec<usize>,
    regions: HashMap<RegionId, RegionHistory>,
    edge_count: usize,
    /// Bitmap over task ids of tasks currently in
    /// [`TaskState::Completed`]. O(1) per transition — crucially,
    /// *independent of completion order*: the event engine completes
    /// tasks in readiness order, where any sorted-list representation
    /// degenerates to an O(n) shift per completion. The checkpoint path
    /// materializes the sorted view from the bitmap in O(n/64 + completed)
    /// only when it snapshots.
    completed_bits: Vec<u64>,
    /// Number of set bits in `completed_bits`.
    completed_count: usize,
    /// Bitmap over task ids of tasks currently in [`TaskState::Ready`]
    /// (one bit per task, word-packed). O(1) insert/remove — the former
    /// sorted-`Vec` representation paid an O(ready) memmove on both
    /// sides of every task lifecycle, which the event engine crosses
    /// once per task.
    ready_bits: Vec<u64>,
    /// Number of set bits in `ready_bits`.
    ready_count: usize,
    /// Per-region liveness refcounts (see [`RegionLiveness`]), updated on
    /// every state transition.
    liveness: HashMap<RegionId, RegionLiveness>,
    /// Regions whose counters currently satisfy [`RegionLiveness::is_live`]
    /// — the incremental mirror of the frontier-liveness analysis, so
    /// checkpoint volume queries are O(live) instead of O(V + E).
    live_set: HashSet<RegionId>,
    /// Flat predecessor arena (CSR): each task's predecessors occupy a
    /// contiguous [`Span`], fixed at submission time (dependences never
    /// change after inference).
    pred_arena: Vec<TaskId>,
    /// Flat successor arena: [`SuccSpan`]s relocate (doubling) when a
    /// streaming append outgrows them; holes left behind are dead space.
    /// Bulk builds via [`GraphBuilder`] lay this out exactly, hole-free.
    succ_arena: Vec<TaskId>,
    /// Flat `(region, mode)` declaration arena.
    access_arena: Vec<(RegionId, AccessMode)>,
    /// Reusable scratch for dependence inference (avoids a heap
    /// allocation per submitted task).
    pred_scratch: Vec<TaskId>,
}

impl TaskGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// An empty graph pre-sized for `tasks` tasks and roughly `edges`
    /// dependence edges, so a large build never regrows its dense arrays
    /// mid-stream. Region tables are *not* pre-sized here (see
    /// [`TaskGraph::reserve_regions`]): region counts are usually far
    /// below task counts, and blanket-reserving the maps for a 1M-task
    /// graph would waste memory.
    #[must_use]
    pub fn with_capacity(tasks: usize, edges: usize) -> Self {
        // Access declarations are unknown ahead of time; two per task
        // covers the common read+write shape without overcommitting.
        Self::with_capacity_parts(tasks, edges, edges, tasks * 2)
    }

    fn with_capacity_parts(
        tasks: usize,
        pred_cap: usize,
        succ_cap: usize,
        access_cap: usize,
    ) -> Self {
        let words = tasks.div_ceil(64);
        let mut g = TaskGraph::default();
        g.nodes.reserve(tasks);
        g.states.reserve(tasks);
        g.unmet.reserve(tasks);
        g.ready_bits.reserve(words);
        g.completed_bits.reserve(words);
        g.pred_arena.reserve(pred_cap);
        g.succ_arena.reserve(succ_cap);
        g.access_arena.reserve(access_cap);
        g
    }

    /// Pre-size the dense per-task arrays and dependence arenas for
    /// `tasks` additional tasks and roughly `edges` additional edges, on
    /// a graph that may already hold tasks. Streaming a large batch into
    /// a live graph never regrows mid-stream after this.
    pub fn reserve(&mut self, tasks: usize, edges: usize) {
        let words = (self.nodes.len() + tasks).div_ceil(64);
        self.nodes.reserve(tasks);
        self.states.reserve(tasks);
        self.unmet.reserve(tasks);
        self.ready_bits
            .reserve(words.saturating_sub(self.ready_bits.len()));
        self.completed_bits
            .reserve(words.saturating_sub(self.completed_bits.len()));
        self.pred_arena.reserve(edges);
        self.succ_arena.reserve(edges);
        self.access_arena.reserve(tasks * 2);
    }

    /// Pre-size the region-history and liveness tables for `regions`
    /// distinct regions, so dependence inference never rehashes.
    pub fn reserve_regions(&mut self, regions: usize) {
        self.regions.reserve(regions);
        self.liveness.reserve(regions);
        self.live_set.reserve(regions);
    }

    /// Number of tasks ever submitted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no task has been submitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of dependence edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of tasks in [`TaskState::Completed`].
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// Whether every task completed successfully.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed_count == self.nodes.len()
    }

    /// All tasks currently in [`TaskState::Completed`], in submission
    /// order.
    ///
    /// Maintained incrementally as a bitmap by [`TaskGraph::complete`]
    /// and [`TaskGraph::rollback`] (O(1) per transition, regardless of
    /// completion order); materializing the sorted view walks the bitmap
    /// words — O(n/64 + completed), paid only by snapshotters (the
    /// engine's checkpoint path, once per checkpoint), never per event.
    #[must_use]
    pub fn completed(&self) -> Vec<TaskId> {
        collect_bits(&self.completed_bits, self.completed_count)
    }

    /// Regions live at the current execution frontier: written by a
    /// completed task and still read by at least one unfinished
    /// (pending/ready/running) task. Only these need checkpointing —
    /// everything else is either dead or reproducible by re-running
    /// unfinished tasks.
    ///
    /// Maintained incrementally per state transition (O(accesses) per
    /// transition), so iterating here is O(live) — the property the
    /// engine's per-checkpoint volume pricing relies on. Iteration order
    /// is unspecified; callers that need determinism must aggregate
    /// order-independently (sums, set building).
    pub fn live_regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.live_set.iter().copied()
    }

    /// Number of regions currently live at the frontier, without
    /// iterating.
    #[must_use]
    pub fn live_region_count(&self) -> usize {
        self.live_set.len()
    }

    /// Submit a task with its data-access declarations, returning its id.
    ///
    /// Dependence edges are inferred against previously submitted tasks:
    ///
    /// * a read of region `r` depends on the last writer of `r` (RAW);
    /// * a write of `r` depends on the last writer (WAW) **and** on every
    ///   reader since that write (WAR).
    ///
    /// Duplicate edges between a task pair are coalesced.
    pub fn add_task<I, R>(&mut self, descriptor: TaskDescriptor, accesses: I) -> TaskId
    where
        I: IntoIterator<Item = (R, AccessMode)>,
        R: Into<RegionId>,
    {
        let acc_start = self.access_arena.len();
        self.access_arena
            .extend(accesses.into_iter().map(|(r, m)| (r.into(), m)));
        let acc = Span {
            start: acc_start,
            len: self.access_arena.len() - acc_start,
        };
        let id = self.push_task_core(descriptor, acc);
        // Wire the new task into its predecessors' successor lists.
        let p = self.nodes[id.index()].preds;
        for j in p.range() {
            let pred = self.pred_arena[j].index();
            self.succ_push(pred, id);
        }
        id
    }

    /// Submit a task with an *explicit* predecessor list instead of
    /// letting the graph infer dependences from the access declarations.
    ///
    /// This is the submission path for callers that already know (or
    /// claim to know) their task's ordering — a tenant shipping a
    /// pre-built DAG, a replayed trace, a test seeding a specific shape.
    /// The access declarations are still recorded (they drive region
    /// histories, liveness and checkpoint volume, and later *inferred*
    /// tasks will order against this one), but nothing checks that
    /// `deps` actually covers every data conflict: two explicit tasks
    /// writing one region with no path between them is a real race the
    /// graph will happily execute in nondeterministic order. Run such
    /// graphs through the static analyzer (`legato-runtime`'s `analyze`
    /// module) before trusting them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] if any dependence names a task
    /// not yet in the graph — edges must point from an earlier submission
    /// to a later one, which is also what keeps the graph acyclic by
    /// construction.
    pub fn add_task_with_deps<I, R>(
        &mut self,
        descriptor: TaskDescriptor,
        accesses: I,
        deps: &[TaskId],
    ) -> Result<TaskId, CoreError>
    where
        I: IntoIterator<Item = (R, AccessMode)>,
        R: Into<RegionId>,
    {
        for &d in deps {
            if d.index() >= self.nodes.len() {
                return Err(CoreError::UnknownTask(d));
            }
        }
        let acc_start = self.access_arena.len();
        self.access_arena
            .extend(accesses.into_iter().map(|(r, m)| (r.into(), m)));
        let acc = Span {
            start: acc_start,
            len: self.access_arena.len() - acc_start,
        };
        let acc = self.collapse_duplicate_accesses(acc);
        let mut deps = deps.to_vec();
        deps.sort_unstable();
        deps.dedup();
        let id = self.push_task_inner(descriptor, acc, Some(&deps));
        let p = self.nodes[id.index()].preds;
        for j in p.range() {
            let pred = self.pred_arena[j].index();
            self.succ_push(pred, id);
        }
        Ok(id)
    }

    /// Core of task submission: infer dependences for a task whose access
    /// declarations already sit in the access arena at `acc`, record its
    /// predecessor span, update region histories, liveness and readiness —
    /// but do **not** wire the task into its predecessors' successor
    /// lists. The caller does that: streaming submission wires immediately
    /// (growth spans), while [`GraphBuilder::build_into`] counts
    /// out-degrees first and lays successors out in one exactly-sized
    /// pass.
    fn push_task_core(&mut self, descriptor: TaskDescriptor, acc: Span) -> TaskId {
        let acc = self.collapse_duplicate_accesses(acc);
        self.push_task_inner(descriptor, acc, None)
    }

    /// Collapse duplicate declarations of the same region within one
    /// task's access window to the [`AccessMode::join`] of their modes,
    /// compacting the window in place (the span shrinks; freed arena
    /// slots keep their stale values and are never referenced again).
    ///
    /// Without this, a task declaring `(r, In)` and `(r, Out)` would
    /// leave two entries in its access list: inference still computed
    /// the right predecessors (both entries consult the same history),
    /// but every *consumer* of the access list — region-history updates,
    /// liveness counters, checkpoint volume, the static analyzer — saw
    /// the region twice with conflicting modes, and `(r, In)` + `(r,
    /// Out)` double-counted `readers_outstanding` while recording the
    /// task as a plain reader *and* the last writer.
    fn collapse_duplicate_accesses(&mut self, acc: Span) -> Span {
        let window = &mut self.access_arena[acc.range()];
        let mut kept = 0usize;
        for i in 0..window.len() {
            let (region, mode) = window[i];
            if let Some(slot) = window[..kept].iter_mut().find(|(r, _)| *r == region) {
                slot.1 = slot.1.join(mode);
            } else {
                window[kept] = (region, mode);
                kept += 1;
            }
        }
        Span {
            start: acc.start,
            len: kept,
        }
    }

    /// Shared tail of task submission: predecessors either inferred from
    /// the access declarations (`explicit == None`) or taken verbatim
    /// from the caller (`Some`, already validated, sorted and deduped).
    fn push_task_inner(
        &mut self,
        descriptor: TaskDescriptor,
        acc: Span,
        explicit: Option<&[TaskId]>,
    ) -> TaskId {
        let id = TaskId(self.nodes.len() as u64);

        let mut preds = std::mem::take(&mut self.pred_scratch);
        preds.clear();
        if let Some(deps) = explicit {
            preds.extend_from_slice(deps);
        } else {
            for a in acc.range() {
                let (region, mode) = self.access_arena[a];
                let hist = self.regions.entry(region).or_default();
                if mode.reads() {
                    if let Some(w) = hist.last_writer {
                        preds.push(w);
                    }
                }
                if mode.writes() {
                    if let Some(w) = hist.last_writer {
                        preds.push(w);
                    }
                    preds.extend(hist.readers_since_write.iter().copied());
                }
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        // Only count predecessors that are still outstanding.
        let unmet = preds
            .iter()
            .filter(|p| !self.states[p.index()].is_terminal())
            .count();

        let pred_span = Span {
            start: self.pred_arena.len(),
            len: preds.len(),
        };
        self.pred_arena.extend_from_slice(&preds);
        self.edge_count += preds.len();
        preds.clear();
        self.pred_scratch = preds;

        if id.index() / 64 == self.ready_bits.len() {
            // One new word per 64 tasks, for both per-task bitmaps.
            self.ready_bits.push(0);
            self.completed_bits.push(0);
        }
        let state = if unmet == 0 {
            self.insert_ready(id);
            TaskState::Ready
        } else {
            TaskState::Pending
        };

        // Update region histories *after* computing dependences.
        for a in acc.range() {
            let (region, mode) = self.access_arena[a];
            let hist = self.regions.entry(region).or_default();
            if mode.writes() {
                hist.last_writer = Some(id);
                hist.readers_since_write.clear();
            }
            if mode.reads() && !mode.writes() {
                hist.readers_since_write.push(id);
            }
        }
        // The new task is pending or ready: its reads are outstanding.
        for a in acc.range() {
            let (region, mode) = self.access_arena[a];
            if mode.reads() {
                self.update_liveness(region, |l| l.readers_outstanding += 1);
            }
        }

        self.states.push(state);
        self.unmet.push(unmet);
        self.nodes.push(Node {
            descriptor,
            preds: pred_span,
            succs: SuccSpan::default(),
            accesses: acc,
        });
        id
    }

    /// Append `id` to task `p`'s successor span, relocating the span to
    /// the arena tail with doubled capacity when full. Appends arrive in
    /// ascending id order (submission order), and relocation preserves
    /// the prefix, so successor lists stay ascending — a property the
    /// runtime's deterministic replay relies on.
    fn succ_push(&mut self, p: usize, id: TaskId) {
        let s = self.nodes[p].succs;
        if s.len < s.cap {
            self.succ_arena[s.start + s.len] = id;
            self.nodes[p].succs.len += 1;
            return;
        }
        let new_cap = (s.cap * 2).max(2);
        let new_start = self.succ_arena.len();
        self.succ_arena.reserve(new_cap);
        self.succ_arena.extend_from_within(s.start..s.start + s.len);
        self.succ_arena.push(id);
        self.succ_arena.resize(new_start + new_cap, TaskId(0));
        self.nodes[p].succs = SuccSpan {
            start: new_start,
            len: s.len + 1,
            cap: new_cap,
        };
    }

    /// Predecessors of task `i` (by index), borrowed from the arena.
    /// `pub(crate)` so the [`reach`](crate::reach) oracle can walk edges
    /// without per-task `Result` plumbing.
    #[inline]
    pub(crate) fn preds_of(&self, i: usize) -> &[TaskId] {
        &self.pred_arena[self.nodes[i].preds.range()]
    }

    /// Successors of task `i` (by index), borrowed from the arena.
    #[inline]
    pub(crate) fn succs_of(&self, i: usize) -> &[TaskId] {
        let s = self.nodes[i].succs;
        &self.succ_arena[s.start..s.start + s.len]
    }

    /// Descriptor of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    #[inline]
    pub fn descriptor(&self, id: TaskId) -> Result<&TaskDescriptor, CoreError> {
        self.node(id).map(|n| &n.descriptor)
    }

    /// Current lifecycle state of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    #[inline]
    pub fn state(&self, id: TaskId) -> Result<TaskState, CoreError> {
        self.states
            .get(id.index())
            .copied()
            .ok_or(CoreError::UnknownTask(id))
    }

    /// Direct predecessors (dependences) of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn predecessors(&self, id: TaskId) -> Result<&[TaskId], CoreError> {
        let s = self.node(id)?.preds;
        Ok(&self.pred_arena[s.range()])
    }

    /// Direct successors (dependents) of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn successors(&self, id: TaskId) -> Result<&[TaskId], CoreError> {
        let s = self.node(id)?.succs;
        Ok(&self.succ_arena[s.start..s.start + s.len])
    }

    /// The `(region, mode)` declarations a task was submitted with.
    ///
    /// The FTI integration uses this to checkpoint exactly the data declared
    /// at task entry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    #[inline]
    pub fn accesses(&self, id: TaskId) -> Result<&[(RegionId, AccessMode)], CoreError> {
        let s = self.node(id)?.accesses;
        Ok(&self.access_arena[s.range()])
    }

    /// All tasks currently in [`TaskState::Ready`], in submission order.
    ///
    /// The ready set is maintained incrementally as a bitmap by
    /// [`TaskGraph::add_task`], [`TaskGraph::start`],
    /// [`TaskGraph::complete`] and [`TaskGraph::fail`] — O(1) per
    /// transition. Materializing the view walks the bitmap words,
    /// O(n/64 + ready), which only view callers pay; the engine's hot
    /// path never does.
    #[must_use]
    pub fn ready(&self) -> Vec<TaskId> {
        collect_bits(&self.ready_bits, self.ready_count)
    }

    /// Number of tasks currently ready, without allocating.
    #[must_use]
    pub fn ready_count(&self) -> usize {
        self.ready_count
    }

    /// Mark a ready task as running (claimed by a worker).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task is not ready.
    pub fn start(&mut self, id: TaskId) -> Result<(), CoreError> {
        if self.try_claim(id)?.is_some() {
            Ok(())
        } else {
            Err(CoreError::InvalidTransition {
                task: id,
                reason: "task is not ready",
            })
        }
    }

    /// Claim a task for execution if (and only if) it is ready: one node
    /// lookup answering "is this ready?", performing the
    /// `Ready → Running` transition, and handing back the descriptor the
    /// claimer is about to place — all in a single node access. Returns
    /// `None` for a task in any other state — the event engine uses this
    /// to drop stale ready events (task already executed, or poisoned
    /// upstream) without a second state probe.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for an id outside the graph.
    #[inline]
    pub fn try_claim(&mut self, id: TaskId) -> Result<Option<&TaskDescriptor>, CoreError> {
        let state = self
            .states
            .get_mut(id.index())
            .ok_or(CoreError::UnknownTask(id))?;
        if *state != TaskState::Ready {
            return Ok(None);
        }
        *state = TaskState::Running;
        self.remove_ready(id);
        Ok(Some(&self.nodes[id.index()].descriptor))
    }

    /// Complete a task, returning the tasks that became ready.
    ///
    /// Accepts tasks in `Ready` or `Running` state (schedulers that do not
    /// bother with [`TaskGraph::start`] may complete directly).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task is pending or terminal.
    pub fn complete(&mut self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        let mut released = Vec::new();
        self.complete_into(id, &mut released)?;
        Ok(released)
    }

    /// Allocation-free variant of [`TaskGraph::complete`]: the tasks that
    /// became ready are *appended* to `released` (not cleared first), so a
    /// caller-owned scratch buffer can be reused across completions — the
    /// event engine drives every task completion through here.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TaskGraph::complete`]; on error `released` is
    /// untouched.
    #[inline]
    pub fn complete_into(
        &mut self,
        id: TaskId,
        released: &mut Vec<TaskId>,
    ) -> Result<(), CoreError> {
        {
            let state = self
                .states
                .get_mut(id.index())
                .ok_or(CoreError::UnknownTask(id))?;
            match *state {
                TaskState::Ready | TaskState::Running => {
                    let was_ready = *state == TaskState::Ready;
                    *state = TaskState::Completed;
                    if was_ready {
                        self.remove_ready(id);
                    }
                }
                TaskState::Pending => {
                    return Err(CoreError::InvalidTransition {
                        task: id,
                        reason: "task still has unmet dependences",
                    })
                }
                _ => {
                    return Err(CoreError::InvalidTransition {
                        task: id,
                        reason: "task already terminal",
                    })
                }
            }
        }
        self.insert_completed(id);
        // The task's reads are settled; its writes are now produced by a
        // completed task. Both can flip region liveness.
        for a in self.nodes[id.index()].accesses.range() {
            let (region, mode) = self.access_arena[a];
            self.update_liveness(region, |l| {
                if mode.reads() {
                    l.readers_outstanding -= 1;
                }
                if mode.writes() {
                    l.writers_done += 1;
                }
            });
        }
        self.release_successors(id, released);
        Ok(())
    }

    /// Fail a task and poison all transitive successors whose inputs are now
    /// suspect ("detecting error propagation across task boundaries",
    /// paper §I). Returns the poisoned tasks in topological order.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] for a bad id;
    /// [`CoreError::InvalidTransition`] if the task already terminal.
    pub fn fail(&mut self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        {
            let state = self
                .states
                .get_mut(id.index())
                .ok_or(CoreError::UnknownTask(id))?;
            if state.is_terminal() {
                return Err(CoreError::InvalidTransition {
                    task: id,
                    reason: "task already terminal",
                });
            }
            let was_ready = *state == TaskState::Ready;
            *state = TaskState::Failed;
            if was_ready {
                self.remove_ready(id);
            }
        }
        self.retire_reads(id);
        let mut poisoned = Vec::new();
        let mut stack: Vec<TaskId> = self.succs_of(id.index()).to_vec();
        while let Some(next) = stack.pop() {
            let state = &mut self.states[next.index()];
            if *state == TaskState::Poisoned || *state == TaskState::Failed {
                continue;
            }
            let was_ready = *state == TaskState::Ready;
            *state = TaskState::Poisoned;
            if was_ready {
                self.remove_ready(next);
            }
            self.retire_reads(next);
            poisoned.push(next);
            stack.extend_from_slice(self.succs_of(next.index()));
        }
        poisoned.sort_unstable();
        poisoned.dedup();
        Ok(poisoned)
    }

    /// A task left the pending/ready/running population without
    /// completing (failed or poisoned): its reads are no longer
    /// outstanding.
    fn retire_reads(&mut self, id: TaskId) {
        for a in self.nodes[id.index()].accesses.range() {
            let (region, mode) = self.access_arena[a];
            if mode.reads() {
                self.update_liveness(region, |l| l.readers_outstanding -= 1);
            }
        }
    }

    /// Apply `mutate` to a region's liveness counters and maintain the
    /// live set on liveness *transitions* only — one hash lookup per
    /// access in steady state (a region goes live once and dies once, so
    /// the set update is amortized away on the completion hot path).
    fn update_liveness(&mut self, region: RegionId, mutate: impl FnOnce(&mut RegionLiveness)) {
        let counters = self.liveness.entry(region).or_default();
        let was_live = counters.is_live();
        mutate(counters);
        let is_live = counters.is_live();
        if was_live != is_live {
            if is_live {
                self.live_set.insert(region);
            } else {
                self.live_set.remove(&region);
            }
        }
    }

    /// Set `id`'s completed bit (no-op if already set).
    fn insert_completed(&mut self, id: TaskId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.completed_bits[w] & mask == 0 {
            self.completed_bits[w] |= mask;
            self.completed_count += 1;
        }
    }

    /// Roll the graph back to a checkpointed execution frontier: exactly
    /// the tasks in `completed` stay [`TaskState::Completed`], and every
    /// other task — running, completed-since, failed or poisoned — is
    /// re-armed to [`TaskState::Pending`]/[`TaskState::Ready`] with its
    /// unmet-dependence count recomputed. Returns the tasks that are ready
    /// after the rollback, in submission order.
    ///
    /// This is the graph half of checkpoint/restart: the runtime records
    /// the completed set when it takes a checkpoint, and on an
    /// unrecoverable task failure restores it here instead of poisoning
    /// the whole downstream cone (`legato-runtime`'s resilience module is
    /// the caller). Work completed after the checkpoint is *discarded*
    /// and will be re-executed.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] if `completed` names a task outside the
    /// graph; [`CoreError::InvalidTransition`] if `completed` is not
    /// closed under dependences (a task is listed but one of its
    /// predecessors is not — such a frontier could never have been
    /// reached). On error the graph is unchanged.
    pub fn rollback(&mut self, completed: &[TaskId]) -> Result<Vec<TaskId>, CoreError> {
        let mut keep = vec![false; self.nodes.len()];
        for &id in completed {
            self.node(id)?;
            keep[id.index()] = true;
        }
        for &id in completed {
            if self.preds_of(id.index()).iter().any(|p| !keep[p.index()]) {
                return Err(CoreError::InvalidTransition {
                    task: id,
                    reason: "checkpoint frontier is not closed under dependences",
                });
            }
        }
        self.ready_bits.iter_mut().for_each(|w| *w = 0);
        self.ready_count = 0;
        self.completed_bits.iter_mut().for_each(|w| *w = 0);
        self.completed_count = 0;
        self.liveness.clear();
        self.live_set.clear();
        let mut ready = Vec::new();
        for i in 0..self.nodes.len() {
            if keep[i] {
                self.states[i] = TaskState::Completed;
                self.insert_completed(TaskId(i as u64));
                continue;
            }
            let unmet = self.preds_of(i).iter().filter(|p| !keep[p.index()]).count();
            self.unmet[i] = unmet;
            if unmet == 0 {
                self.states[i] = TaskState::Ready;
                let id = TaskId(i as u64);
                self.insert_ready(id);
                ready.push(id);
            } else {
                self.states[i] = TaskState::Pending;
            }
        }
        // Rebuild the region-liveness counters wholesale: the rollback is
        // O(n) regardless, and every task is now either completed
        // (writes count) or pending/ready (reads outstanding).
        for (node, &completed) in self.nodes.iter().zip(&keep) {
            for &(region, mode) in &self.access_arena[node.accesses.range()] {
                let live = self.liveness.entry(region).or_default();
                if completed && mode.writes() {
                    live.writers_done += 1;
                }
                if !completed && mode.reads() {
                    live.readers_outstanding += 1;
                }
            }
        }
        let live_now: Vec<RegionId> = self
            .liveness
            .iter()
            .filter(|(_, l)| l.is_live())
            .map(|(&r, _)| r)
            .collect();
        self.live_set.extend(live_now);
        Ok(ready)
    }

    /// Walk the dependence edges backwards from `id` and return the set of
    /// [`TaskState::Failed`] ancestors — the root causes of a poisoned task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] for an id outside the graph.
    pub fn root_cause(&self, id: TaskId) -> Result<Vec<TaskId>, CoreError> {
        self.node(id)?;
        let mut visited = vec![false; self.nodes.len()];
        let mut causes = Vec::new();
        let mut stack = vec![id];
        visited[id.index()] = true;
        while let Some(next) = stack.pop() {
            for &p in self.preds_of(next.index()) {
                if !visited[p.index()] {
                    visited[p.index()] = true;
                    if self.states[p.index()] == TaskState::Failed {
                        causes.push(p);
                    }
                    stack.push(p);
                }
            }
        }
        causes.sort_unstable();
        Ok(causes)
    }

    /// A topological order of all tasks, computed by indegree counting
    /// (Kahn's algorithm) with a smallest-id frontier.
    ///
    /// Because dependence edges always point from an earlier submission to
    /// a later one, the result coincides with submission order — but it is
    /// *derived* from the edges rather than assumed, so it stays correct
    /// for any acyclic edge set and doubles as a structural self-check.
    ///
    /// # Panics
    ///
    /// Panics if the edge set contains a cycle (impossible through the
    /// public API, which only creates forward edges). Use
    /// [`TaskGraph::try_topological_order`] to get the cycle named
    /// instead of a panic.
    #[must_use]
    pub fn topological_order(&self) -> Vec<TaskId> {
        match self.try_topological_order() {
            Ok(order) => order,
            Err(cycle) => panic!("dependence edges must form a DAG, found cycle {cycle:?}"),
        }
    }

    /// A topological order, or the tasks of a dependence cycle when one
    /// exists: `Err(path)` names tasks `t₀ → t₁ → … → t₀` where each
    /// task depends on the previous one and the first depends on the
    /// last. The non-panicking form of
    /// [`TaskGraph::topological_order`], used by the static analyzer to
    /// turn a malformed edge set into a diagnostic instead of an abort.
    ///
    /// # Errors
    ///
    /// `Err(cycle)` when the edge set is not a DAG; the path is
    /// non-empty and closed (last task has an edge to the first).
    pub fn try_topological_order(&self) -> Result<Vec<TaskId>, Vec<TaskId>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.nodes.len();
        let mut indegree: Vec<usize> = vec![0; n];
        for i in 0..n {
            for s in self.succs_of(i) {
                indegree[s.index()] += 1;
            }
        }
        let mut frontier: BinaryHeap<Reverse<TaskId>> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| Reverse(TaskId(i as u64)))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(id)) = frontier.pop() {
            order.push(id);
            for &s in self.succs_of(id.index()) {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    frontier.push(Reverse(s));
                }
            }
        }
        if order.len() == n {
            return Ok(order);
        }
        // Kahn stalled: every unprocessed task has an unprocessed
        // predecessor, so walking predecessors within the unprocessed set
        // must revisit a task — that revisit closes a cycle.
        let mut seen_at: Vec<Option<usize>> = vec![None; n];
        let start = indegree
            .iter()
            .position(|&d| d > 0)
            .expect("order is short, so some task kept indegree > 0");
        let mut walk = vec![TaskId(start as u64)];
        seen_at[start] = Some(0);
        loop {
            let at = walk.last().expect("walk starts non-empty").index();
            let next = self
                .preds_of(at)
                .iter()
                .copied()
                .find(|p| indegree[p.index()] > 0)
                .expect("unprocessed tasks keep an unprocessed predecessor");
            if let Some(first) = seen_at[next.index()] {
                // Revisited: walk[first..] closed the loop. It was
                // discovered backwards (each step is "depends on"), so
                // reverse it to read in dependence order.
                let mut cycle = walk.split_off(first);
                cycle.reverse();
                return Err(cycle);
            }
            seen_at[next.index()] = Some(walk.len());
            walk.push(next);
        }
    }

    /// Critical path under a per-task cost function: returns the total cost
    /// and the path itself (source → sink).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyGraph`] if the graph has no tasks.
    pub fn critical_path<F>(&self, cost: F) -> Result<(f64, Vec<TaskId>), CoreError>
    where
        F: Fn(TaskId, &TaskDescriptor) -> f64,
    {
        if self.nodes.is_empty() {
            return Err(CoreError::EmptyGraph);
        }
        let n = self.nodes.len();
        let mut dist = vec![0.0_f64; n];
        let mut best_pred: Vec<Option<TaskId>> = vec![None; n];
        for i in 0..n {
            let id = TaskId(i as u64);
            let c = cost(id, &self.nodes[i].descriptor);
            let mut incoming = 0.0_f64;
            for &p in self.preds_of(i) {
                if dist[p.index()] > incoming {
                    incoming = dist[p.index()];
                    best_pred[i] = Some(p);
                }
            }
            dist[i] = incoming + c;
        }
        let (mut at, mut total) = (TaskId(0), dist[0]);
        for (i, &d) in dist.iter().enumerate().skip(1) {
            if d > total {
                total = d;
                at = TaskId(i as u64);
            }
        }
        let mut path = vec![at];
        while let Some(p) = best_pred[at.index()] {
            path.push(p);
            at = p;
        }
        path.reverse();
        Ok((total, path))
    }

    /// Total work (sum of the cost function) across all tasks, for
    /// parallelism = work / critical-path calculations.
    #[must_use]
    pub fn total_cost<F>(&self, cost: F) -> f64
    where
        F: Fn(TaskId, &TaskDescriptor) -> f64,
    {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| cost(TaskId(i as u64), &n.descriptor))
            .sum()
    }

    fn release_successors(&mut self, id: TaskId, released: &mut Vec<TaskId>) {
        // Index iteration instead of cloning the successor list: this runs
        // once per completed task, on the engine's hottest path.
        let span = self.nodes[id.index()].succs;
        for k in 0..span.len {
            let s = self.succ_arena[span.start + k];
            if self.states[s.index()] != TaskState::Pending {
                continue;
            }
            self.unmet[s.index()] -= 1;
            if self.unmet[s.index()] == 0 {
                self.states[s.index()] = TaskState::Ready;
                self.insert_ready(s);
                released.push(s);
            }
        }
    }

    /// Set `id`'s ready bit (no-op if already set).
    fn insert_ready(&mut self, id: TaskId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.ready_bits[w] & mask == 0 {
            self.ready_bits[w] |= mask;
            self.ready_count += 1;
        }
    }

    /// Clear `id`'s ready bit (no-op if absent).
    fn remove_ready(&mut self, id: TaskId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.ready_bits[w] & mask != 0 {
            self.ready_bits[w] &= !mask;
            self.ready_count -= 1;
        }
    }

    fn node(&self, id: TaskId) -> Result<&Node, CoreError> {
        self.nodes.get(id.index()).ok_or(CoreError::UnknownTask(id))
    }
}

/// Materialize a per-task bitmap as a sorted `TaskId` list (`count` =
/// number of set bits, used to pre-size the output).
fn collect_bits(words: &[u64], count: usize) -> Vec<TaskId> {
    let mut out = Vec::with_capacity(count);
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as u64;
            out.push(TaskId((w as u64) * 64 + b));
            bits &= bits - 1;
        }
    }
    out
}

/// Bulk construction of a [`TaskGraph`].
///
/// Streaming [`TaskGraph::add_task`] cannot know a task's out-degree in
/// advance, so its successor spans grow by amortized relocation, leaving
/// dead holes in the arena. The builder buffers descriptors and a flat
/// access list, then [`GraphBuilder::build`] performs dependence
/// inference in one pass while counting out-degrees and lays the
/// successor CSR out with *exact* capacities in a second pass — no
/// rehash, no regrow, no holes. This is what makes 1M-task graph builds
/// routine rather than allocation-bound.
///
/// The resulting graph is indistinguishable from one built by streaming
/// submission: same predecessors, successors (ascending), ready set and
/// edge count.
///
/// ```
/// use legato_core::graph::GraphBuilder;
/// use legato_core::task::{AccessMode, TaskDescriptor};
///
/// let mut b = GraphBuilder::with_capacity(2, 3);
/// let w = b.task(TaskDescriptor::named("w"), [(0u64, AccessMode::Out)]);
/// let r = b.task(TaskDescriptor::named("r"), [(0u64, AccessMode::In)]);
/// let g = b.build();
/// assert_eq!(g.predecessors(r).unwrap(), &[w]);
/// assert_eq!(g.ready(), vec![w]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    descriptors: Vec<TaskDescriptor>,
    /// Flat access declarations for all buffered tasks.
    accesses: Vec<(RegionId, AccessMode)>,
    /// Prefix offsets into `accesses`: `bounds[i]..bounds[i + 1]` is
    /// task `i`'s declaration window. Always starts with 0.
    bounds: Vec<usize>,
    region_capacity: usize,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new()
    }
}

impl GraphBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        GraphBuilder::with_capacity(0, 0)
    }

    /// A builder pre-sized for `tasks` tasks carrying `accesses` access
    /// declarations in total.
    #[must_use]
    pub fn with_capacity(tasks: usize, accesses: usize) -> Self {
        let mut bounds = Vec::with_capacity(tasks + 1);
        bounds.push(0);
        GraphBuilder {
            descriptors: Vec::with_capacity(tasks),
            accesses: Vec::with_capacity(accesses),
            bounds,
            region_capacity: 0,
        }
    }

    /// Hint the number of distinct regions the graph will touch, so the
    /// dependence-inference hash tables are sized once up front.
    #[must_use]
    pub fn with_region_capacity(mut self, regions: usize) -> Self {
        self.region_capacity = regions;
        self
    }

    /// Buffer a task with its access declarations. The returned id is
    /// the one [`GraphBuilder::build`] will assign (submission order);
    /// when appending to an existing graph via
    /// [`GraphBuilder::build_into`], actual ids are offset by the
    /// graph's prior length.
    pub fn task<I, R>(&mut self, descriptor: TaskDescriptor, accesses: I) -> TaskId
    where
        I: IntoIterator<Item = (R, AccessMode)>,
        R: Into<RegionId>,
    {
        let id = TaskId(self.descriptors.len() as u64);
        self.descriptors.push(descriptor);
        self.accesses
            .extend(accesses.into_iter().map(|(r, m)| (r.into(), m)));
        self.bounds.push(self.accesses.len());
        id
    }

    /// The buffered task descriptors, in submission order.
    #[must_use]
    pub fn descriptors(&self) -> &[TaskDescriptor] {
        &self.descriptors
    }

    /// Number of buffered tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether no task has been buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Build a fresh, exactly-sized graph from the buffered tasks.
    #[must_use]
    pub fn build(self) -> TaskGraph {
        let mut g = TaskGraph::with_capacity_parts(self.descriptors.len(), 0, 0, 0);
        self.build_into(&mut g);
        g
    }

    /// Append the buffered tasks to an existing graph, inferring
    /// dependences against its region histories exactly as streaming
    /// submission would (new tasks may depend on previously submitted
    /// ones). Consumes the builder.
    pub fn build_into(self, g: &mut TaskGraph) {
        let GraphBuilder {
            descriptors,
            accesses,
            bounds,
            region_capacity,
        } = self;
        let n0 = g.nodes.len();
        let new = descriptors.len();
        g.nodes.reserve(new);
        g.states.reserve(new);
        g.unmet.reserve(new);
        // Dependence edges are unknown until inference; one per access
        // covers the common RAW/WAW shape without overcommitting.
        g.pred_arena.reserve(accesses.len());
        if region_capacity > 0 {
            g.reserve_regions(region_capacity);
        }
        // Move the flat access block in wholesale (no per-task copies).
        let acc_base = g.access_arena.len();
        if acc_base == 0 {
            g.access_arena = accesses;
        } else {
            g.access_arena.extend_from_slice(&accesses);
        }

        // Pass 1: submit every task (dependence inference, states,
        // bitmaps, region histories). Edges whose producer is an *old*
        // task are wired immediately (ids ascend, so existing successor
        // lists stay sorted); out-degrees of new tasks are only counted.
        let mut degree = vec![0usize; new];
        for (k, descriptor) in descriptors.into_iter().enumerate() {
            let acc = Span {
                start: acc_base + bounds[k],
                len: bounds[k + 1] - bounds[k],
            };
            let id = g.push_task_core(descriptor, acc);
            let p = g.nodes[id.index()].preds;
            for j in p.range() {
                let pred = g.pred_arena[j].index();
                if pred < n0 {
                    g.succ_push(pred, id);
                } else {
                    degree[pred - n0] += 1;
                }
            }
        }

        // Exactly-sized successor spans for the new tasks.
        let total: usize = degree.iter().sum();
        let succ_base = g.succ_arena.len();
        g.succ_arena.resize(succ_base + total, TaskId(0));
        let mut offset = succ_base;
        for (k, &d) in degree.iter().enumerate() {
            g.nodes[n0 + k].succs = SuccSpan {
                start: offset,
                len: 0,
                cap: d,
            };
            offset += d;
        }

        // Pass 2: fill the spans. Walking tasks in ascending id order
        // fills every successor list in ascending order — the property
        // deterministic replay relies on.
        for i in n0..g.nodes.len() {
            let id = TaskId(i as u64);
            let p = g.nodes[i].preds;
            for j in p.range() {
                let pred = g.pred_arena[j].index();
                if pred >= n0 {
                    let s = g.nodes[pred].succs;
                    g.succ_arena[s.start + s.len] = id;
                    g.nodes[pred].succs.len += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskDescriptor;

    fn desc(name: &'static str) -> TaskDescriptor {
        TaskDescriptor::named(name)
    }

    #[test]
    fn raw_dependence() {
        let mut g = TaskGraph::new();
        let w = g.add_task(desc("w"), [(0u64, AccessMode::Out)]);
        let r = g.add_task(desc("r"), [(0u64, AccessMode::In)]);
        assert_eq!(g.predecessors(r).unwrap(), &[w]);
        assert_eq!(g.successors(w).unwrap(), &[r]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn war_dependence() {
        let mut g = TaskGraph::new();
        let _w0 = g.add_task(desc("w0"), [(0u64, AccessMode::Out)]);
        let r = g.add_task(desc("r"), [(0u64, AccessMode::In)]);
        let w1 = g.add_task(desc("w1"), [(0u64, AccessMode::Out)]);
        // w1 must wait for the reader (WAR) and the previous writer (WAW).
        assert!(g.predecessors(w1).unwrap().contains(&r));
    }

    #[test]
    fn waw_dependence() {
        let mut g = TaskGraph::new();
        let w0 = g.add_task(desc("w0"), [(0u64, AccessMode::Out)]);
        let w1 = g.add_task(desc("w1"), [(0u64, AccessMode::Out)]);
        assert_eq!(g.predecessors(w1).unwrap(), &[w0]);
    }

    #[test]
    fn duplicate_declarations_collapse_to_the_joined_mode() {
        // Regression: a task declaring one region as both `in` and `out`
        // must end up with a single `inout` entry — the duplicate used
        // to survive into the access list, double-counting liveness and
        // recording the task as both a plain reader and the last writer.
        let mut g = TaskGraph::new();
        let t = g.add_task(
            desc("t"),
            [
                (0u64, AccessMode::In),
                (0u64, AccessMode::Out),
                (1u64, AccessMode::In),
            ],
        );
        assert_eq!(
            g.accesses(t).unwrap(),
            &[
                (RegionId(0), AccessMode::InOut),
                (RegionId(1), AccessMode::In)
            ]
        );
        // The joined mode drives inference for later tasks: a follow-up
        // writer to region 0 sees `t` as the last writer, and a reader
        // sees a RAW dependence.
        let r = g.add_task(desc("r"), [(0u64, AccessMode::In)]);
        assert_eq!(g.predecessors(r).unwrap(), &[t]);
    }

    #[test]
    fn duplicate_declarations_collapse_in_bulk_builds_too() {
        let mut b = GraphBuilder::new();
        let t = b.task(desc("t"), [(5u64, AccessMode::Out), (5u64, AccessMode::In)]);
        b.task(desc("r"), [(5u64, AccessMode::In)]);
        let g = b.build();
        assert_eq!(g.accesses(t).unwrap(), &[(RegionId(5), AccessMode::InOut)]);
        assert_eq!(g.predecessors(TaskId(1)).unwrap(), &[t]);
    }

    #[test]
    fn explicit_deps_bypass_inference_but_update_history() {
        let mut g = TaskGraph::new();
        let a = g
            .add_task_with_deps(desc("a"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        // Same region, no declared ordering: the graph accepts the race.
        let b = g
            .add_task_with_deps(desc("b"), [(0u64, AccessMode::Out)], &[])
            .unwrap();
        assert_eq!(g.predecessors(b).unwrap(), &[] as &[TaskId]);
        assert_eq!(g.ready().len(), 2);
        // History was still recorded: an *inferred* successor orders
        // against the explicit task's write.
        let c = g.add_task(desc("c"), [(0u64, AccessMode::In)]);
        assert_eq!(g.predecessors(c).unwrap(), &[b]);
        // Unknown (future) dependences are refused.
        let err = g
            .add_task_with_deps(desc("d"), [(1u64, AccessMode::Out)], &[TaskId(99)])
            .unwrap_err();
        assert_eq!(err, CoreError::UnknownTask(TaskId(99)));
        let _ = a;
    }

    #[test]
    fn try_topological_order_names_a_cycle() {
        // Cycles are impossible through the public API; forge one by
        // rewiring arenas directly to prove the diagnostic path works.
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let _b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::InOut)]);
        // Existing edges: a → b → c. Add the back edge c → a.
        let pred_start = g.pred_arena.len();
        g.pred_arena.push(c);
        g.nodes[a.index()].preds = Span {
            start: pred_start,
            len: 1,
        };
        g.succ_push(c.index(), a);
        let cycle = g.try_topological_order().unwrap_err();
        assert_eq!(cycle.len(), 3, "{cycle:?}");
        // Closed in dependence order: each task depends on the previous
        // one, and the first depends on the last.
        for pair in cycle.windows(2) {
            assert!(g.predecessors(pair[1]).unwrap().contains(&pair[0]));
        }
        assert!(g
            .predecessors(cycle[0])
            .unwrap()
            .contains(cycle.last().unwrap()));
        // The panicking form still panics.
        assert!(std::panic::catch_unwind(|| g.topological_order()).is_err());
    }

    #[test]
    fn independent_readers_run_in_parallel() {
        let mut g = TaskGraph::new();
        let w = g.add_task(desc("w"), [(0u64, AccessMode::Out)]);
        let r1 = g.add_task(desc("r1"), [(0u64, AccessMode::In)]);
        let r2 = g.add_task(desc("r2"), [(0u64, AccessMode::In)]);
        g.complete(w).unwrap();
        let ready = g.ready();
        assert!(ready.contains(&r1) && ready.contains(&r2));
    }

    #[test]
    fn inout_chains_serialize() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::InOut)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::InOut)]);
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
        assert_eq!(g.predecessors(c).unwrap(), &[b]);
        assert_eq!(g.ready(), vec![a]);
    }

    #[test]
    fn completion_releases_in_order() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        assert_eq!(g.complete(a).unwrap(), vec![b]);
        assert_eq!(g.complete(b).unwrap(), vec![c]);
        assert_eq!(g.complete(c).unwrap(), vec![]);
        assert!(g.is_complete());
    }

    #[test]
    fn completing_pending_task_is_rejected() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert!(matches!(
            g.complete(b),
            Err(CoreError::InvalidTransition { .. })
        ));
    }

    #[test]
    fn double_completion_is_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.complete(a).unwrap();
        assert!(g.complete(a).is_err());
    }

    #[test]
    fn unknown_task_errors() {
        let g = TaskGraph::new();
        assert_eq!(
            g.state(TaskId(5)).unwrap_err(),
            CoreError::UnknownTask(TaskId(5))
        );
    }

    #[test]
    fn start_then_complete() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.start(a).unwrap();
        assert_eq!(g.state(a).unwrap(), TaskState::Running);
        assert!(g.start(a).is_err());
        g.complete(a).unwrap();
        assert_eq!(g.state(a).unwrap(), TaskState::Completed);
    }

    #[test]
    fn failure_poisons_descendants() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        let d = g.add_task(desc("d"), [(2u64, AccessMode::Out)]); // independent
        let poisoned = g.fail(a).unwrap();
        assert_eq!(poisoned, vec![b, c]);
        assert_eq!(g.state(d).unwrap(), TaskState::Ready);
        assert_eq!(g.state(a).unwrap(), TaskState::Failed);
        assert_eq!(g.state(c).unwrap(), TaskState::Poisoned);
    }

    #[test]
    fn root_cause_walks_back() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        let c = g.add_task(
            desc("c"),
            [
                (0u64, AccessMode::In),
                (1u64, AccessMode::In),
                (2u64, AccessMode::Out),
            ],
        );
        let d = g.add_task(desc("d"), [(2u64, AccessMode::In)]);
        g.fail(a).unwrap();
        let causes = g.root_cause(d).unwrap();
        assert_eq!(causes, vec![a]);
        assert!(!causes.contains(&b));
        assert!(!causes.contains(&c));
    }

    #[test]
    fn critical_path_diamond() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let _b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let _c = g.add_task(desc("c"), [(0u64, AccessMode::In), (2u64, AccessMode::Out)]);
        let d = g.add_task(desc("d"), [(1u64, AccessMode::In), (2u64, AccessMode::In)]);
        // b costs 5, everything else 1: critical path a→b→d = 7.
        let (len, path) = g
            .critical_path(|id, _| if id == TaskId(1) { 5.0 } else { 1.0 })
            .unwrap();
        assert!((len - 7.0).abs() < 1e-12);
        assert_eq!(path.first(), Some(&TaskId(0)));
        assert_eq!(path.last(), Some(&d));
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn critical_path_empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(g.critical_path(|_, _| 1.0), Err(CoreError::EmptyGraph));
    }

    #[test]
    fn total_cost_sums_all() {
        let mut g = TaskGraph::new();
        g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert!((g.total_cost(|_, _| 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accesses_are_recorded() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(7u64, AccessMode::InOut)]);
        assert_eq!(g.accesses(a).unwrap(), &[(RegionId(7), AccessMode::InOut)]);
    }

    #[test]
    fn submission_after_completion_sees_no_stale_dependence() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        g.complete(a).unwrap();
        // New reader depends on a completed writer: must be immediately ready.
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
    }

    #[test]
    fn ready_set_is_maintained_incrementally() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(2u64, AccessMode::Out)]);
        assert_eq!(g.ready(), vec![a, c]);
        assert_eq!(g.ready_count(), 2);
        g.start(a).unwrap();
        assert_eq!(g.ready(), vec![c], "running tasks leave the ready set");
        g.complete(a).unwrap();
        assert_eq!(g.ready(), vec![b, c], "release inserts in id order");
        g.complete(c).unwrap();
        g.fail(b).unwrap();
        assert!(g.ready().is_empty());
        assert_eq!(g.ready_count(), 0);
    }

    #[test]
    fn failing_a_ready_task_clears_it_from_ready_set() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        g.fail(a).unwrap();
        assert_eq!(g.ready(), vec![b]);
    }

    #[test]
    fn topological_order_matches_submission_order() {
        let mut g = TaskGraph::new();
        for i in 0..50u64 {
            g.add_task(desc("t"), [(i % 7, AccessMode::InOut)]);
        }
        let order = g.topological_order();
        assert_eq!(order, (0..50).map(TaskId).collect::<Vec<_>>());
        // And it is a genuine topological order: preds before succs.
        let pos: Vec<usize> = order.iter().map(|t| t.index()).collect();
        for i in 0..g.len() {
            let id = TaskId(i as u64);
            for &p in g.predecessors(id).unwrap() {
                assert!(pos[p.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn duplicate_region_access_deduplicates_edges() {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            desc("a"),
            [(0u64, AccessMode::Out), (1u64, AccessMode::Out)],
        );
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::In)]);
        // Two shared regions but only one edge a→b.
        assert_eq!(g.predecessors(b).unwrap(), &[a]);
        assert_eq!(g.edge_count(), 1);
    }

    /// Chain a → b → c: complete all three, roll back to the frontier
    /// after `a`, and the graph re-arms `b` (ready) and `c` (pending).
    #[test]
    fn rollback_rearms_completed_tasks() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::In)]);
        for t in [a, b, c] {
            g.complete(t).unwrap();
        }
        assert!(g.is_complete());
        let ready = g.rollback(&[a]).unwrap();
        assert_eq!(ready, vec![b]);
        assert_eq!(g.state(a).unwrap(), TaskState::Completed);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.state(c).unwrap(), TaskState::Pending);
        assert_eq!(g.completed_count(), 1);
        assert_eq!(g.ready(), vec![b]);
        // Execution proceeds normally after the rollback.
        assert_eq!(g.complete(b).unwrap(), vec![c]);
        g.complete(c).unwrap();
        assert!(g.is_complete());
    }

    /// Rollback un-fails a failed task and un-poisons its cone.
    #[test]
    fn rollback_recovers_failed_and_poisoned_tasks() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::In)]);
        g.complete(a).unwrap();
        g.fail(b).unwrap();
        assert_eq!(g.state(c).unwrap(), TaskState::Poisoned);
        let ready = g.rollback(&[a]).unwrap();
        assert_eq!(ready, vec![b]);
        assert_eq!(g.state(b).unwrap(), TaskState::Ready);
        assert_eq!(g.state(c).unwrap(), TaskState::Pending);
    }

    /// Rollback to the empty frontier restarts the whole graph.
    #[test]
    fn rollback_to_empty_frontier_restarts_everything() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        g.complete(a).unwrap();
        g.complete(b).unwrap();
        let ready = g.rollback(&[]).unwrap();
        assert_eq!(ready, vec![a]);
        assert_eq!(g.completed_count(), 0);
        assert_eq!(g.state(b).unwrap(), TaskState::Pending);
    }

    /// Naive recomputation of the live-region set (the pre-incremental
    /// definition): regions written by a completed task and read by at
    /// least one pending/ready/running task. The incremental counters
    /// must agree with this after every transition.
    fn naive_live(g: &TaskGraph) -> HashSet<RegionId> {
        let mut written_by_done: HashSet<RegionId> = HashSet::new();
        let mut read_by_pending: HashSet<RegionId> = HashSet::new();
        for i in 0..g.len() {
            let id = TaskId(i as u64);
            let state = g.state(id).unwrap();
            for &(r, m) in g.accesses(id).unwrap() {
                match state {
                    TaskState::Completed => {
                        if m.writes() {
                            written_by_done.insert(r);
                        }
                    }
                    TaskState::Failed | TaskState::Poisoned => {}
                    _ => {
                        if m.reads() {
                            read_by_pending.insert(r);
                        }
                    }
                }
            }
        }
        written_by_done
            .intersection(&read_by_pending)
            .copied()
            .collect()
    }

    fn incremental_live(g: &TaskGraph) -> HashSet<RegionId> {
        g.live_regions().collect()
    }

    #[test]
    fn live_regions_match_naive_recompute_through_lifecycle() {
        let mut g = TaskGraph::new();
        // Pipeline a →(r0)→ b →(r1)→ c, plus a diamond d/e over r2 and an
        // independent chain f →(r3)→ h that will fail mid-way.
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let _c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        let d = g.add_task(desc("d"), [(2u64, AccessMode::InOut)]);
        let _e = g.add_task(desc("e"), [(2u64, AccessMode::InOut)]);
        let f = g.add_task(desc("f"), [(3u64, AccessMode::Out)]);
        let _h = g.add_task(desc("h"), [(3u64, AccessMode::In)]);
        assert_eq!(incremental_live(&g), naive_live(&g));

        g.complete(a).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));
        assert_eq!(incremental_live(&g), HashSet::from([RegionId(0)]));

        g.start(b).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));
        g.complete(b).unwrap();
        // r0 is dead (no reader left), r1 is live.
        assert_eq!(incremental_live(&g), HashSet::from([RegionId(1)]));
        assert_eq!(incremental_live(&g), naive_live(&g));

        g.complete(d).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));

        // Failing f poisons h: region 3 never becomes live, and the
        // poisoned reader must not count as outstanding.
        g.fail(f).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));
        assert_eq!(g.live_region_count(), incremental_live(&g).len());
    }

    #[test]
    fn live_regions_rebuilt_by_rollback() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(1u64, AccessMode::In)]);
        for t in [a, b, c] {
            g.complete(t).unwrap();
        }
        assert_eq!(incremental_live(&g), naive_live(&g));
        g.rollback(&[a]).unwrap();
        assert_eq!(incremental_live(&g), HashSet::from([RegionId(0)]));
        assert_eq!(incremental_live(&g), naive_live(&g));
        // And after re-execution the structures stay consistent.
        g.complete(b).unwrap();
        g.complete(c).unwrap();
        assert_eq!(incremental_live(&g), naive_live(&g));
        assert!(incremental_live(&g).is_empty());
    }

    #[test]
    fn completed_accessor_is_incremental_and_sorted() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(2u64, AccessMode::Out)]);
        assert!(g.completed().is_empty());
        // Complete out of id order: the view stays sorted by id.
        g.complete(c).unwrap();
        g.complete(a).unwrap();
        assert_eq!(g.completed(), &[a, c]);
        g.complete(b).unwrap();
        assert_eq!(g.completed(), &[a, b, c]);
        assert_eq!(g.completed_count(), 3);
        // Rollback resets the list to the restored frontier.
        g.rollback(&[a]).unwrap();
        assert_eq!(g.completed(), &[a]);
    }

    #[test]
    fn complete_into_appends_to_caller_buffer() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In)]);
        let mut buf = vec![TaskId(99)];
        g.complete_into(a, &mut buf).unwrap();
        assert_eq!(buf, vec![TaskId(99), b], "appends, never clears");
        assert!(g.complete_into(a, &mut buf).is_err());
        assert_eq!(buf.len(), 2, "error leaves the buffer untouched");
    }

    /// Every structural observable of two graphs must agree.
    fn assert_same_graph(a: &TaskGraph, b: &TaskGraph) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.ready(), b.ready());
        assert_eq!(a.ready_count(), b.ready_count());
        for i in 0..a.len() {
            let id = TaskId(i as u64);
            assert_eq!(a.predecessors(id).unwrap(), b.predecessors(id).unwrap());
            assert_eq!(a.successors(id).unwrap(), b.successors(id).unwrap());
            assert_eq!(a.accesses(id).unwrap(), b.accesses(id).unwrap());
            assert_eq!(a.state(id).unwrap(), b.state(id).unwrap());
        }
    }

    /// A mixed workload exercising RAW/WAR/WAW fan-in and fan-out.
    fn mixed_workload() -> Vec<(&'static str, Vec<(u64, AccessMode)>)> {
        vec![
            ("scatter", vec![(0, AccessMode::Out), (1, AccessMode::Out)]),
            ("r0", vec![(0, AccessMode::In), (2, AccessMode::Out)]),
            ("r1", vec![(0, AccessMode::In), (3, AccessMode::Out)]),
            ("rw", vec![(1, AccessMode::InOut)]),
            (
                "gather",
                vec![
                    (2, AccessMode::In),
                    (3, AccessMode::In),
                    (1, AccessMode::In),
                    (4, AccessMode::Out),
                ],
            ),
            ("rewrite", vec![(0, AccessMode::Out)]),
            ("sink", vec![(4, AccessMode::In), (0, AccessMode::In)]),
        ]
    }

    #[test]
    fn builder_bulk_build_matches_streaming_submission() {
        let mut streamed = TaskGraph::new();
        let mut b = GraphBuilder::new();
        for (name, accesses) in mixed_workload() {
            let s = streamed.add_task(desc_of(name), accesses.clone());
            let t = b.task(desc_of(name), accesses);
            assert_eq!(s, t, "builder promises the streaming id");
        }
        let built = b.build();
        assert_same_graph(&streamed, &built);
        // And the built graph executes identically.
        let mut built = built;
        while let Some(&id) = built.ready().first() {
            built.complete(id).unwrap();
        }
        assert!(built.is_complete());
    }

    fn desc_of(name: &str) -> TaskDescriptor {
        TaskDescriptor::named(name.to_owned())
    }

    #[test]
    fn build_into_extends_existing_graph() {
        // Stream the first half, bulk-append the second: must match the
        // all-streaming graph, including cross-boundary dependences.
        let workload = mixed_workload();
        let mut streamed = TaskGraph::new();
        for (name, accesses) in &workload {
            streamed.add_task(desc_of(name), accesses.clone());
        }
        let mut hybrid = TaskGraph::new();
        for (name, accesses) in &workload[..3] {
            hybrid.add_task(desc_of(name), accesses.clone());
        }
        let mut b = GraphBuilder::new();
        for (name, accesses) in &workload[3..] {
            b.task(desc_of(name), accesses.clone());
        }
        b.build_into(&mut hybrid);
        assert_same_graph(&streamed, &hybrid);
    }

    #[test]
    fn builder_handles_wide_fan_out_and_fan_in() {
        // One writer, 100 readers, one gathering writer: exercises both
        // a large successor span and a large WAR pred list.
        let mut streamed = TaskGraph::new();
        let mut b = GraphBuilder::with_capacity(102, 102);
        let tasks: Vec<(TaskDescriptor, Vec<(u64, AccessMode)>)> =
            std::iter::once((desc_of("w"), vec![(0, AccessMode::Out)]))
                .chain((0..100).map(|_| (desc_of("r"), vec![(0, AccessMode::In)])))
                .chain(std::iter::once((desc_of("g"), vec![(0, AccessMode::Out)])))
                .collect();
        for (d, a) in tasks {
            streamed.add_task(d.clone(), a.clone());
            b.task(d, a);
        }
        let built = b.build();
        assert_same_graph(&streamed, &built);
        assert_eq!(built.successors(TaskId(0)).unwrap().len(), 101);
        assert_eq!(built.predecessors(TaskId(101)).unwrap().len(), 101);
    }

    #[test]
    fn streaming_succ_relocation_keeps_ascending_order() {
        // Interleave submissions so the writer's successor span relocates
        // several times; order must stay ascending throughout.
        let mut g = TaskGraph::new();
        let w = g.add_task(desc("w"), [(0u64, AccessMode::Out)]);
        let mut readers = Vec::new();
        for i in 0..17u64 {
            // Unrelated tasks interleave, fragmenting the succ arena.
            g.add_task(desc("noise"), [(100 + i, AccessMode::Out)]);
            readers.push(g.add_task(desc("r"), [(0u64, AccessMode::In)]));
        }
        assert_eq!(g.successors(w).unwrap(), readers.as_slice());
    }

    #[test]
    fn with_capacity_is_behavior_neutral() {
        let mut plain = TaskGraph::new();
        let mut sized = TaskGraph::with_capacity(200, 400);
        sized.reserve_regions(8);
        for i in 0..200u64 {
            plain.add_task(desc("t"), [(i % 7, AccessMode::InOut)]);
            sized.add_task(desc("t"), [(i % 7, AccessMode::InOut)]);
        }
        assert_same_graph(&plain, &sized);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let b = GraphBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        let g = b.build();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    /// A frontier that is not closed under dependences is rejected and
    /// the graph is left untouched.
    #[test]
    fn rollback_rejects_unreachable_frontier() {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::InOut)]);
        g.complete(a).unwrap();
        g.complete(b).unwrap();
        // b completed without a: impossible frontier.
        let err = g.rollback(&[b]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidTransition { task, .. } if task == b));
        assert_eq!(g.completed_count(), 2, "failed rollback must not mutate");
        assert!(matches!(
            g.rollback(&[TaskId(99)]),
            Err(CoreError::UnknownTask(TaskId(99)))
        ));
    }
}
