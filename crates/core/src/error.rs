//! Error type for core task-graph operations.

use std::error::Error;
use std::fmt;

use crate::task::TaskId;

/// Errors produced by core task-graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A task id was used that the graph does not contain.
    UnknownTask(TaskId),
    /// A task was completed (or failed) twice, or completed before it was
    /// ready.
    InvalidTransition {
        /// Task whose state transition was rejected.
        task: TaskId,
        /// Human-readable description of the rejected transition.
        reason: &'static str,
    },
    /// An operation required a non-empty graph.
    EmptyGraph,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownTask(id) => write!(f, "unknown task {id}"),
            CoreError::InvalidTransition { task, reason } => {
                write!(f, "invalid state transition for task {task}: {reason}")
            }
            CoreError::EmptyGraph => write!(f, "operation requires a non-empty task graph"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnknownTask(TaskId(7)).to_string(),
            "unknown task T7"
        );
        assert!(CoreError::EmptyGraph.to_string().contains("non-empty"));
        let e = CoreError::InvalidTransition {
            task: TaskId(1),
            reason: "not ready",
        };
        assert!(e.to_string().contains("not ready"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }
}
