//! Physical units used throughout the toolset.
//!
//! Every quantity the simulators exchange — supply voltages, power draws,
//! energies, simulated time, data sizes — is wrapped in a newtype so that a
//! voltage can never be added to a wattage by accident (C-NEWTYPE). All
//! wrappers are thin `f64`/`u64` carriers with the arithmetic that is
//! physically meaningful and nothing more.
//!
//! ```
//! use legato_core::units::{Seconds, Watt};
//!
//! let energy = Watt(50.0) * Seconds(2.0);
//! assert_eq!(energy.0, 100.0); // joules
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! float_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero value of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Clamp into `[lo, hi]`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the carried value is finite (not NaN/inf).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{:.3} {}", self.0, $suffix)
                }
            }
        }
    };
}

float_unit!(
    /// Electric potential in volts. FPGA BRAM rails in the paper run at a
    /// nominal 1.0 V and are underscaled in millivolt steps.
    Volt,
    "V"
);

float_unit!(
    /// Power in watts.
    Watt,
    "W"
);

float_unit!(
    /// Energy in joules.
    Joule,
    "J"
);

float_unit!(
    /// Simulated time in seconds. The simulators advance this clock
    /// deterministically; it never depends on wall-clock time.
    Seconds,
    "s"
);

float_unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

float_unit!(
    /// Fault density in faults per Mbit, the unit Fig. 5 of the paper uses
    /// for undervolted BRAM bit-flips.
    FaultsPerMbit,
    "faults/Mbit"
);

impl Volt {
    /// Construct from millivolts.
    ///
    /// ```
    /// use legato_core::units::Volt;
    /// assert_eq!(Volt::from_millivolts(850.0), Volt(0.85));
    /// ```
    #[must_use]
    pub fn from_millivolts(mv: f64) -> Self {
        Volt(mv / 1000.0)
    }

    /// Value in millivolts.
    #[must_use]
    pub fn millivolts(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Seconds {
    /// Construct from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms / 1e3)
    }

    /// Construct from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Seconds(us / 1e6)
    }

    /// Value in milliseconds.
    #[must_use]
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Hertz {
    /// Construct from megahertz.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Construct from gigahertz.
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }
}

/// Energy is power sustained over time.
impl Mul<Seconds> for Watt {
    type Output = Joule;
    fn mul(self, rhs: Seconds) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

/// Energy is power sustained over time (commutative form).
impl Mul<Watt> for Seconds {
    type Output = Joule;
    fn mul(self, rhs: Watt) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

/// Average power over an interval.
impl Div<Seconds> for Joule {
    type Output = Watt;
    fn div(self, rhs: Seconds) -> Watt {
        Watt(self.0 / rhs.0)
    }
}

/// Duration an energy budget lasts at a given draw.
impl Div<Watt> for Joule {
    type Output = Seconds;
    fn div(self, rhs: Watt) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// A data size in bytes.
///
/// Stored as an exact `u64`; the humanized `Display` implementation is for
/// reporting only.
///
/// ```
/// use legato_core::units::Bytes;
/// let ckpt = Bytes::gib(16);
/// assert_eq!(ckpt.as_u64(), 16 * 1024 * 1024 * 1024);
/// assert_eq!(ckpt.to_string(), "16.00 GiB");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// `n` kibibytes.
    #[must_use]
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// `n` mebibytes.
    #[must_use]
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    #[must_use]
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64`, for rate arithmetic.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in mebibytes as a float.
    #[must_use]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Size in megabits, the denominator of [`FaultsPerMbit`].
    #[must_use]
    pub fn as_mbit_f64(self) -> f64 {
        (self.0 as f64 * 8.0) / 1e6
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Time to move this many bytes at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[must_use]
    pub fn time_at(self, rate: BytesPerSec) -> Seconds {
        assert!(rate.0 > 0.0, "transfer rate must be positive");
        Seconds(self.0 as f64 / rate.0)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        const MIB: f64 = 1024.0 * 1024.0;
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        const TIB: f64 = 1024.0 * 1024.0 * 1024.0 * 1024.0;
        let b = self.0 as f64;
        if b >= TIB {
            write!(f, "{:.2} TiB", b / TIB)
        } else if b >= GIB {
            write!(f, "{:.2} GiB", b / GIB)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b / MIB)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b / KIB)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

float_unit!(
    /// Transfer bandwidth in bytes per second.
    BytesPerSec,
    "B/s"
);

impl BytesPerSec {
    /// `n` mebibytes per second.
    #[must_use]
    pub fn mib_per_sec(n: f64) -> Self {
        BytesPerSec(n * 1024.0 * 1024.0)
    }

    /// `n` gibibytes per second.
    #[must_use]
    pub fn gib_per_sec(n: f64) -> Self {
        BytesPerSec(n * 1024.0 * 1024.0 * 1024.0)
    }
}

/// Bytes moved in a second interval.
impl Mul<Seconds> for BytesPerSec {
    type Output = Bytes;
    fn mul(self, rhs: Seconds) -> Bytes {
        Bytes((self.0 * rhs.0).max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watt(400.0) * Seconds(0.5);
        assert_eq!(e, Joule(200.0));
        assert_eq!(Seconds(0.5) * Watt(400.0), Joule(200.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(Joule(100.0) / Seconds(4.0), Watt(25.0));
    }

    #[test]
    fn energy_over_power_is_time() {
        assert_eq!(Joule(100.0) / Watt(50.0), Seconds(2.0));
    }

    #[test]
    fn unit_ratio_is_dimensionless() {
        let saving = 1.0 - Watt(10.0) / Watt(100.0);
        assert!((saving - 0.9).abs() < 1e-12);
    }

    #[test]
    fn volt_millivolt_round_trip() {
        let v = Volt::from_millivolts(540.0);
        assert!((v.millivolts() - 540.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::kib(2).as_u64(), 2048);
        assert_eq!(Bytes::mib(1).as_u64(), 1 << 20);
        assert_eq!(Bytes::gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn bytes_display_humanizes() {
        assert_eq!(Bytes(512).to_string(), "512 B");
        assert_eq!(Bytes::kib(1).to_string(), "1.00 KiB");
        assert_eq!(Bytes::gib(2048).to_string(), "2.00 TiB");
    }

    #[test]
    fn bytes_mbit_conversion() {
        // 1 MiB = 8 * 1024 * 1024 bits = 8.388608 Mbit.
        assert!((Bytes::mib(1).as_mbit_f64() - 8.388_608).abs() < 1e-9);
    }

    #[test]
    fn transfer_time() {
        let t = Bytes::mib(100).time_at(BytesPerSec::mib_per_sec(50.0));
        assert!((t.0 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "transfer rate must be positive")]
    fn transfer_time_zero_rate_panics() {
        let _ = Bytes::mib(1).time_at(BytesPerSec(0.0));
    }

    #[test]
    fn bandwidth_times_time_is_bytes() {
        let b = BytesPerSec::mib_per_sec(10.0) * Seconds(2.0);
        assert_eq!(b, Bytes::mib(20));
    }

    #[test]
    fn clamp_and_minmax() {
        assert_eq!(Volt(1.2).clamp(Volt(0.5), Volt(1.0)), Volt(1.0));
        assert_eq!(Watt(3.0).min(Watt(5.0)), Watt(3.0));
        assert_eq!(Watt(3.0).max(Watt(5.0)), Watt(5.0));
    }

    #[test]
    fn sums() {
        let total: Joule = [Joule(1.0), Joule(2.5)].into_iter().sum();
        assert_eq!(total, Joule(3.5));
        let total: Bytes = [Bytes(10), Bytes(20)].into_iter().sum();
        assert_eq!(total, Bytes(30));
    }

    #[test]
    fn display_precision() {
        assert_eq!(format!("{:.1}", Volt(0.85)), "0.8 V");
        assert_eq!(format!("{}", Watt(1.0)), "1.000 W");
    }
}
