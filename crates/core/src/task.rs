//! The generalized task: LEGaTO's unit of scheduling, checkpointing,
//! replication and offload.
//!
//! A task is described by a [`TaskDescriptor`] — a name, a workload
//! characterization used by cost models ([`Work`]), an elasticity range
//! (XiTAO's "parallel computation with arbitrary (elastic) resources"), and
//! the non-functional [`Requirements`] bundle.
//!
//! [`Requirements`]: crate::requirements::Requirements
//! Data dependences are *not* stated explicitly; they are derived by the
//! [`TaskGraph`](crate::graph::TaskGraph) from the `(region, AccessMode)`
//! pairs declared when the task is submitted, exactly like OmpSs
//! `in`/`out`/`inout` clauses.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::requirements::Requirements;
use crate::units::Bytes;

/// Identifier of a task within one [`TaskGraph`](crate::graph::TaskGraph).
///
/// Ids are dense indices assigned in submission (program) order, which makes
/// them usable as `Vec` indices inside runtimes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u64);

impl TaskId {
    /// The dense index this id represents.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a data region (the object of an OmpSs dependence clause).
///
/// Regions are opaque to the graph: two tasks conflict iff they name the
/// same region id with incompatible access modes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RegionId(pub u64);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u64> for RegionId {
    fn from(v: u64) -> Self {
        RegionId(v)
    }
}

/// Direction of a task's access to a data region.
///
/// These mirror OmpSs/OpenMP `depend` clauses and generate the classic
/// dependence kinds: read-after-write, write-after-read, write-after-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// The task reads the region (`in`).
    In,
    /// The task writes the region without reading it (`out`).
    Out,
    /// The task reads and writes the region (`inout`).
    InOut,
}

impl AccessMode {
    /// Whether this access reads the region.
    #[must_use]
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// Whether this access writes the region.
    #[must_use]
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }

    /// The strongest mode covering both `self` and `other`: the result
    /// reads iff either reads and writes iff either writes. This is the
    /// collapse rule for a task that declares the same region more than
    /// once — `in` + `out` must become `inout`, or dependence inference
    /// would miss one direction of the conflict.
    #[must_use]
    pub fn join(self, other: AccessMode) -> AccessMode {
        match (
            self.reads() || other.reads(),
            self.writes() || other.writes(),
        ) {
            (true, true) => AccessMode::InOut,
            (false, true) => AccessMode::Out,
            // Declarations always read or write, so (false, false) is
            // unreachable; folding it into `In` keeps the match total.
            (_, false) => AccessMode::In,
        }
    }
}

/// Broad classification of what a task does, used by device cost models to
/// pick appropriate speedup factors (a GPU accelerates `Inference` far more
/// than `Io`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TaskKind {
    /// General-purpose computation.
    #[default]
    Compute,
    /// Data movement between memory spaces or nodes.
    Transfer,
    /// Neural-network style inference (dense linear algebra).
    Inference,
    /// Storage or peripheral I/O.
    Io,
}

/// Workload characterization of a task, consumed by device cost models.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Work {
    /// Floating-point operations the task performs.
    pub flops: f64,
    /// Bytes the task streams through memory.
    pub bytes: Bytes,
}

impl Work {
    /// A compute-only workload of `flops` floating point operations.
    #[must_use]
    pub fn flops(flops: f64) -> Self {
        Work {
            flops,
            bytes: Bytes::ZERO,
        }
    }

    /// A memory-bound workload of `bytes` streamed bytes.
    #[must_use]
    pub fn bytes(bytes: Bytes) -> Self {
        Work { flops: 0.0, bytes }
    }

    /// Both compute and memory components.
    #[must_use]
    pub fn new(flops: f64, bytes: Bytes) -> Self {
        Work { flops, bytes }
    }

    /// Arithmetic intensity in flops/byte (`None` when no bytes move).
    #[must_use]
    pub fn intensity(&self) -> Option<f64> {
        if self.bytes == Bytes::ZERO {
            None
        } else {
            Some(self.flops / self.bytes.as_f64())
        }
    }
}

/// Static description of one task.
///
/// Construct with [`TaskDescriptor::named`] and refine with the builder
/// methods:
///
/// ```
/// use legato_core::task::{TaskDescriptor, TaskKind, Work};
/// use legato_core::requirements::{Criticality, Requirements};
/// use legato_core::units::Bytes;
///
/// let desc = TaskDescriptor::named("saxpy")
///     .with_kind(TaskKind::Compute)
///     .with_work(Work::new(2.0e6, Bytes::mib(8)))
///     .with_elasticity(1, 8)
///     .with_requirements(Requirements::new().with_criticality(Criticality::High));
/// assert_eq!(desc.max_width, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDescriptor {
    /// Human-readable task (type) name. A `Cow` so the overwhelmingly
    /// common case — a static task-type label shared by thousands of
    /// submitted instances — costs no allocation per task; dynamic names
    /// still work through the same constructor.
    pub name: std::borrow::Cow<'static, str>,
    /// Workload classification.
    pub kind: TaskKind,
    /// Workload size.
    pub work: Work,
    /// Minimum resource width (XiTAO elasticity lower bound), ≥ 1.
    pub min_width: usize,
    /// Maximum resource width (XiTAO elasticity upper bound), ≥ `min_width`.
    pub max_width: usize,
    /// Non-functional requirements.
    pub requirements: Requirements,
}

impl TaskDescriptor {
    /// A descriptor with the given name and neutral defaults: `Compute`
    /// kind, empty work, width 1, default requirements. A `&'static str`
    /// name is borrowed, not allocated.
    #[must_use]
    pub fn named(name: impl Into<std::borrow::Cow<'static, str>>) -> Self {
        TaskDescriptor {
            name: name.into(),
            kind: TaskKind::default(),
            work: Work::default(),
            min_width: 1,
            max_width: 1,
            requirements: Requirements::default(),
        }
    }

    /// Set the workload kind.
    #[must_use]
    pub fn with_kind(mut self, kind: TaskKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set the workload size.
    #[must_use]
    pub fn with_work(mut self, work: Work) -> Self {
        self.work = work;
        self
    }

    /// Set the elastic width range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    #[must_use]
    pub fn with_elasticity(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1, "minimum width must be at least 1");
        assert!(min <= max, "minimum width must not exceed maximum width");
        self.min_width = min;
        self.max_width = max;
        self
    }

    /// Attach non-functional requirements.
    #[must_use]
    pub fn with_requirements(mut self, req: Requirements) -> Self {
        self.requirements = req;
        self
    }

    /// Whether the task can use more than one resource unit.
    #[must_use]
    pub fn is_elastic(&self) -> bool {
        self.max_width > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::Criticality;

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(42).to_string(), "T42");
        assert_eq!(RegionId(3).to_string(), "R3");
    }

    #[test]
    fn access_mode_semantics() {
        assert!(AccessMode::In.reads() && !AccessMode::In.writes());
        assert!(!AccessMode::Out.reads() && AccessMode::Out.writes());
        assert!(AccessMode::InOut.reads() && AccessMode::InOut.writes());
    }

    #[test]
    fn work_intensity() {
        assert_eq!(Work::flops(100.0).intensity(), None);
        let w = Work::new(200.0, Bytes(100));
        assert_eq!(w.intensity(), Some(2.0));
    }

    #[test]
    fn descriptor_defaults() {
        let d = TaskDescriptor::named("t");
        assert_eq!(d.name, "t");
        assert_eq!(d.kind, TaskKind::Compute);
        assert_eq!((d.min_width, d.max_width), (1, 1));
        assert!(!d.is_elastic());
    }

    #[test]
    fn descriptor_builder() {
        let d = TaskDescriptor::named("nn")
            .with_kind(TaskKind::Inference)
            .with_elasticity(2, 4)
            .with_requirements(Requirements::new().with_criticality(Criticality::Critical));
        assert_eq!(d.kind, TaskKind::Inference);
        assert!(d.is_elastic());
        assert_eq!(d.requirements.criticality.replica_count(), 3);
    }

    #[test]
    #[should_panic(expected = "minimum width must not exceed maximum width")]
    fn elasticity_validation() {
        let _ = TaskDescriptor::named("bad").with_elasticity(4, 2);
    }

    #[test]
    #[should_panic(expected = "minimum width must be at least 1")]
    fn elasticity_zero_min() {
        let _ = TaskDescriptor::named("bad").with_elasticity(0, 2);
    }

    #[test]
    fn region_from_u64() {
        let r: RegionId = 9u64.into();
        assert_eq!(r, RegionId(9));
    }
}
