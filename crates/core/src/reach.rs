//! Happens-before reachability over a [`TaskGraph`] — the oracle behind
//! the static race and information-flow lints in `legato-runtime`.
//!
//! The oracle answers "does task *a* happen before task *b*?" for a
//! chosen set of *source* tasks. It is a bitset transitive closure
//! computed in one pass over the existing Kahn order: every task carries
//! one bit per source, and a task's row is the union of its
//! predecessors' rows plus the predecessors that are themselves sources.
//! With `S` sources the pass costs `O(E · S / 64)` word operations and
//! `O(V · S / 64)` memory — querying *all* pairs is available by passing
//! every task as a source, but the analyzer deliberately narrows `S` to
//! the tasks that actually need transitive resolution (conflicting
//! accessors whose ordering is not witnessed by a direct edge), so on
//! inference-built graphs, where every conflict has a direct edge, the
//! closure degenerates to the free `S = 0` case and analysis stays
//! linear in the graph.
//!
//! Dependence edges always point from an earlier submission to a later
//! one, so submission id order *is* a topological order; the oracle
//! still derives its walk from [`TaskGraph::try_topological_order`] so a
//! malformed edge set surfaces as a named cycle instead of a wrong
//! answer.

use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Transitive happens-before closure from a set of source tasks.
///
/// Build one with [`Reachability::over`], then query
/// [`Reachability::reaches`] for any `(source, task)` pair. Queries for
/// a `from` task that was not passed as a source return `false` — the
/// caller owns the source set.
#[derive(Debug, Clone)]
pub struct Reachability {
    /// Words per row: `ceil(sources / 64)`.
    words: usize,
    /// `n · words` bit matrix, row `t` = sources that happen before `t`.
    bits: Vec<u64>,
    /// Column index of each source task; `u32::MAX` = not a source.
    column: Vec<u32>,
}

const NOT_A_SOURCE: u32 = u32::MAX;

impl Reachability {
    /// Compute the closure of `sources` over `graph`.
    ///
    /// Duplicate sources collapse to one column. The pass walks tasks in
    /// topological (= submission) order, so each row is final when
    /// visited.
    ///
    /// # Errors
    ///
    /// `Err(cycle)` when the edge set is not a DAG — the closed cycle
    /// path from [`TaskGraph::try_topological_order`], for diagnostics.
    pub fn over(graph: &TaskGraph, sources: &[TaskId]) -> Result<Self, Vec<TaskId>> {
        let order = graph.try_topological_order()?;
        let n = graph.len();
        let mut column = vec![NOT_A_SOURCE; n];
        let mut cols = 0u32;
        for &s in sources {
            if s.index() < n && column[s.index()] == NOT_A_SOURCE {
                column[s.index()] = cols;
                cols += 1;
            }
        }
        let words = (cols as usize).div_ceil(64);
        let mut bits = vec![0u64; n * words];
        if words > 0 {
            for &t in &order {
                let i = t.index();
                for p in 0..graph.preds_of(i).len() {
                    let pred = graph.preds_of(i)[p].index();
                    // Row union: everything reaching a predecessor
                    // reaches this task.
                    let (lo, hi) = (pred * words, i * words);
                    for w in 0..words {
                        bits[hi + w] |= bits[lo + w];
                    }
                    let col = column[pred];
                    if col != NOT_A_SOURCE {
                        bits[hi + (col as usize) / 64] |= 1u64 << (col % 64);
                    }
                }
            }
        }
        Ok(Reachability {
            words,
            bits,
            column,
        })
    }

    /// Whether `from` (a source) happens strictly before `to`: a
    /// dependence path `from → … → to` exists. `false` when `from` was
    /// not passed as a source, when either id is out of range, or when
    /// `from == to`.
    #[must_use]
    pub fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        let Some(&col) = self.column.get(from.index()) else {
            return false;
        };
        if col == NOT_A_SOURCE || to.index() * self.words >= self.bits.len() {
            return false;
        }
        let word = self.bits[to.index() * self.words + (col as usize) / 64];
        word & (1u64 << (col % 64)) != 0
    }

    /// Whether two tasks are ordered either way (`a` before `b` or `b`
    /// before `a`). Both directions require the respective task to be a
    /// source.
    #[must_use]
    pub fn ordered(&self, a: TaskId, b: TaskId) -> bool {
        self.reaches(a, b) || self.reaches(b, a)
    }

    /// Reconstruct one happens-before path `from → … → to` as evidence
    /// for a diagnostic, or `None` when `from` does not reach `to`.
    ///
    /// Walks predecessor lists backwards from `to`, at each step picking
    /// the first predecessor that is `from` or is reached by `from` —
    /// `O(path · max degree)` queries against the closure.
    #[must_use]
    pub fn happens_before_path(
        &self,
        graph: &TaskGraph,
        from: TaskId,
        to: TaskId,
    ) -> Option<Vec<TaskId>> {
        if !self.reaches(from, to) {
            return None;
        }
        let mut path = vec![to];
        let mut at = to;
        while at != from {
            let step = graph
                .preds_of(at.index())
                .iter()
                .copied()
                .find(|&p| p == from || self.reaches(from, p))?;
            path.push(step);
            at = step;
        }
        path.reverse();
        Some(path)
    }
}

/// Check whether `pred` is a *direct* predecessor of `task` — the cheap
/// ordering witness the analyzer tries before falling back to the
/// transitive closure. Predecessor lists are sorted by construction, so
/// this is a binary search.
#[must_use]
pub fn has_direct_edge(graph: &TaskGraph, pred: TaskId, task: TaskId) -> bool {
    task.index() < graph.len() && graph.preds_of(task.index()).binary_search(&pred).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, TaskDescriptor};

    fn desc(name: &'static str) -> TaskDescriptor {
        TaskDescriptor::named(name)
    }

    /// diamond: a → {b, c} → d, via inferred dependences.
    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task(desc("a"), [(0u64, AccessMode::Out)]);
        let b = g.add_task(desc("b"), [(0u64, AccessMode::In), (1u64, AccessMode::Out)]);
        let c = g.add_task(desc("c"), [(0u64, AccessMode::In), (2u64, AccessMode::Out)]);
        let d = g.add_task(desc("d"), [(1u64, AccessMode::In), (2u64, AccessMode::In)]);
        (g, [a, b, c, d])
    }

    #[test]
    fn transitive_closure_over_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let r = Reachability::over(&g, &[a, b, c, d]).expect("acyclic");
        assert!(r.reaches(a, b) && r.reaches(a, c) && r.reaches(a, d));
        assert!(r.reaches(b, d) && r.reaches(c, d));
        assert!(!r.reaches(b, c) && !r.reaches(c, b));
        assert!(!r.reaches(d, a));
        assert!(!r.reaches(a, a), "happens-before is strict");
        assert!(r.ordered(a, d) && !r.ordered(b, c));
    }

    #[test]
    fn non_sources_never_reach() {
        let (g, [a, _, _, d]) = diamond();
        let r = Reachability::over(&g, &[a]).expect("acyclic");
        assert!(r.reaches(a, d));
        assert!(!r.reaches(d, a), "d was not a source");
        assert!(!r.reaches(TaskId(99), a), "out of range");
    }

    #[test]
    fn empty_source_set_is_free_and_inert() {
        let (g, [a, _, _, d]) = diamond();
        let r = Reachability::over(&g, &[]).expect("acyclic");
        assert!(!r.reaches(a, d));
    }

    #[test]
    fn path_reconstruction_witnesses_the_order() {
        let (g, [a, b, c, d]) = diamond();
        let r = Reachability::over(&g, &[a, b]).expect("acyclic");
        let path = r.happens_before_path(&g, a, d).expect("a reaches d");
        assert_eq!(path.first(), Some(&a));
        assert_eq!(path.last(), Some(&d));
        assert_eq!(path.len(), 3, "a → (b|c) → d");
        for pair in path.windows(2) {
            assert!(
                has_direct_edge(&g, pair[0], pair[1]),
                "{pair:?} must be an edge"
            );
        }
        assert!(r.happens_before_path(&g, b, c).is_none());
    }

    #[test]
    fn direct_edges_are_found_without_the_closure() {
        let (g, [a, b, c, d]) = diamond();
        assert!(has_direct_edge(&g, a, b));
        assert!(has_direct_edge(&g, c, d));
        assert!(!has_direct_edge(&g, a, d), "only transitive");
        assert!(!has_direct_edge(&g, b, c));
    }

    #[test]
    fn explicit_deps_participate_in_the_closure() {
        let mut g = TaskGraph::new();
        let a = g
            .add_task_with_deps(desc("a"), [(0u64, AccessMode::Out)], &[])
            .expect("no deps");
        let b = g
            .add_task_with_deps(desc("b"), [(0u64, AccessMode::Out)], &[])
            .expect("no deps");
        let c = g
            .add_task_with_deps(desc("c"), [(0u64, AccessMode::In)], &[a])
            .expect("a exists");
        let r = Reachability::over(&g, &[a, b]).expect("acyclic");
        assert!(r.reaches(a, c));
        assert!(!r.ordered(a, b), "the two writers race");
        assert!(!r.reaches(b, c));
    }
}
