//! Small numeric helpers shared by schedulers, models and harnesses.
//!
//! HEATS learns per-node performance/energy models from profiling samples
//! (paper §V: "Software probing (workloads), Learning phase"); the
//! experiment harnesses summarize series. Both use these routines, so they
//! live here rather than being duplicated.

/// Arithmetic mean. Returns `0.0` for an empty slice.
///
/// ```
/// assert_eq!(legato_core::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns `0.0` for slices shorter than 2.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Geometric mean of strictly positive values. Returns `0.0` for an empty
/// slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean requires strictly positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Linear interpolation percentile (`p` in `[0, 100]`) of an unsorted slice.
/// Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Result of an ordinary least squares fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predict `y` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// Returns `None` when fewer than two points are given or all `x` are
/// identical (the slope is then undefined).
///
/// ```
/// let pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)];
/// let fit = legato_core::stats::linear_fit(&pts).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;

    let my = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot.abs() < 1e-12 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Exponential fit `y ≈ a · exp(b · x)` via log-linear least squares.
///
/// All `y` must be strictly positive; returns `None` otherwise (or when the
/// underlying linear fit is degenerate). Used to verify the paper's claim
/// that undervolting fault rates grow exponentially within the critical
/// region.
#[must_use]
pub fn exponential_fit(points: &[(f64, f64)]) -> Option<(f64, f64, f64)> {
    if points.iter().any(|p| p.1 <= 0.0) {
        return None;
    }
    let logged: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x, y.ln())).collect();
    let fit = linear_fit(&logged)?;
    Some((fit.intercept.exp(), fit.slope, fit.r_squared))
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarize a sample. Returns all-zero summary for an empty slice.
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        Summary {
            count: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            median: percentile(xs, 50.0),
            p95: percentile(xs, 95.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn variance_and_stddev() {
        assert_eq!(variance(&[5.0]), 0.0);
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((v - 4.0).abs() < 1e-12);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_perfect_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(20.0) - 58.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn exponential_fit_recovers_params() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64 * 0.1;
                (x, 2.5 * (1.7 * x).exp())
            })
            .collect();
        let (a, b, r2) = exponential_fit(&pts).unwrap();
        assert!((a - 2.5).abs() < 1e-6);
        assert!((b - 1.7).abs() < 1e-6);
        assert!(r2 > 0.999);
    }

    #[test]
    fn exponential_fit_rejects_nonpositive_y() {
        assert!(exponential_fit(&[(0.0, 1.0), (1.0, 0.0)]).is_none());
    }

    #[test]
    fn summary_from_slice() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        let empty = Summary::from_slice(&[]);
        assert_eq!(empty.count, 0);
    }
}
