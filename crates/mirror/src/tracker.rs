//! Multi-object tracking: Kalman prediction + Hungarian association.
//!
//! A SORT-style tracker: every confirmed track carries a [`BoxKalman`];
//! each frame, tracks predict forward, the Hungarian algorithm matches
//! predictions to detections under a `1 − IoU` cost with gating, matched
//! tracks update their filters, unmatched detections open tentative
//! tracks, and tracks missing too long are dropped.

use serde::{Deserialize, Serialize};

use crate::geometry::BBox;
use crate::hungarian::assign;
use crate::kalman::BoxKalman;

/// Tracker parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Minimum IoU for a match to be admissible (gating).
    pub iou_gate: f64,
    /// Consecutive hits before a tentative track is confirmed.
    pub min_hits: u32,
    /// Consecutive misses before a track is dropped.
    pub max_age: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            iou_gate: 0.2,
            min_hits: 3,
            max_age: 5,
        }
    }
}

/// Lifecycle state of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackState {
    /// Newly opened; not yet reported.
    Tentative,
    /// Confirmed and reported.
    Confirmed,
}

/// One track.
#[derive(Debug, Clone)]
pub struct Track {
    /// Stable identity.
    pub id: u64,
    /// Current filter state.
    pub kalman: BoxKalman,
    /// Lifecycle state.
    pub state: TrackState,
    /// Consecutive frames with a matched detection.
    pub hits: u32,
    /// Consecutive frames without a match.
    pub misses: u32,
    /// Last predicted box (for association in the current frame).
    pub predicted: BBox,
}

/// The multi-object tracker.
#[derive(Debug, Clone)]
pub struct Tracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
    frames: u64,
}

impl Tracker {
    /// A tracker with the given configuration.
    #[must_use]
    pub fn new(config: TrackerConfig) -> Self {
        Tracker {
            config,
            tracks: Vec::new(),
            next_id: 0,
            frames: 0,
        }
    }

    /// Frames processed.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// All live tracks.
    #[must_use]
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Confirmed tracks only (what the mirror overlay displays).
    #[must_use]
    pub fn confirmed_tracks(&self) -> Vec<&Track> {
        self.tracks
            .iter()
            .filter(|t| t.state == TrackState::Confirmed)
            .collect()
    }

    /// Total identities ever created (monotone; used to measure identity
    /// churn).
    #[must_use]
    pub fn identities_created(&self) -> u64 {
        self.next_id
    }

    /// Process one frame of detections. Returns the ids of confirmed
    /// tracks matched in this frame, paired with their updated boxes.
    pub fn update(&mut self, detections: &[BBox]) -> Vec<(u64, BBox)> {
        self.frames += 1;
        // 1. Predict every track forward.
        for t in &mut self.tracks {
            t.predicted = t.kalman.predict().unwrap_or_else(|_| t.kalman.current());
        }

        // 2. Associate: rows = tracks, cols = detections, cost = 1 − IoU
        //    with gating.
        let matched_pairs: Vec<(usize, usize)> = if self.tracks.is_empty() || detections.is_empty()
        {
            Vec::new()
        } else {
            let cost: Vec<Vec<f64>> = self
                .tracks
                .iter()
                .map(|t| {
                    detections
                        .iter()
                        .map(|d| {
                            let iou = t.predicted.iou(d);
                            if iou < self.config.iou_gate {
                                f64::INFINITY
                            } else {
                                1.0 - iou
                            }
                        })
                        .collect()
                })
                .collect();
            assign(&cost)
                .into_iter()
                .enumerate()
                .filter_map(|(t, d)| d.map(|d| (t, d)))
                .collect()
        };

        // 3. Update matched tracks.
        let mut det_used = vec![false; detections.len()];
        let mut track_matched = vec![false; self.tracks.len()];
        let mut reported = Vec::new();
        for (ti, di) in matched_pairs {
            det_used[di] = true;
            track_matched[ti] = true;
            let track = &mut self.tracks[ti];
            let _ = track.kalman.update(&detections[di]);
            track.hits += 1;
            track.misses = 0;
            if track.state == TrackState::Tentative && track.hits >= self.config.min_hits {
                track.state = TrackState::Confirmed;
            }
            if track.state == TrackState::Confirmed {
                reported.push((track.id, track.kalman.current()));
            }
        }

        // 4. Age unmatched tracks.
        for (ti, matched) in track_matched.iter().enumerate() {
            if !matched {
                let track = &mut self.tracks[ti];
                track.misses += 1;
                track.hits = 0;
            }
        }
        let max_age = self.config.max_age;
        self.tracks.retain(|t| t.misses <= max_age);

        // 5. Open tentative tracks for unmatched detections.
        for (di, used) in det_used.iter().enumerate() {
            if !used {
                let id = self.next_id;
                self.next_id += 1;
                self.tracks.push(Track {
                    id,
                    kalman: BoxKalman::new(&detections[di]),
                    state: TrackState::Tentative,
                    hits: 1,
                    misses: 0,
                    predicted: detections[di],
                });
            }
        }
        reported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Scene, SceneConfig};

    fn clean_scene(actors: usize, seed: u64) -> Scene {
        Scene::new(
            SceneConfig {
                actors,
                miss_rate: 0.0,
                false_positives: 0.0,
                noise_px: 1.0,
                ..SceneConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn single_object_gets_one_stable_id() {
        let mut scene = clean_scene(1, 1);
        let mut tracker = Tracker::new(TrackerConfig::default());
        let mut seen_ids = std::collections::HashSet::new();
        for _ in 0..100 {
            let f = scene.step();
            for (id, _) in tracker.update(&f.detections) {
                seen_ids.insert(id);
            }
        }
        assert_eq!(seen_ids.len(), 1, "ids {seen_ids:?}");
        assert_eq!(tracker.identities_created(), 1);
    }

    #[test]
    fn tentative_tracks_need_min_hits() {
        let mut tracker = Tracker::new(TrackerConfig {
            min_hits: 3,
            ..TrackerConfig::default()
        });
        let det = vec![BBox::new(100.0, 100.0, 50.0, 100.0)];
        assert!(tracker.update(&det).is_empty()); // hit 1: tentative
        assert!(tracker.update(&det).is_empty()); // hit 2: tentative
        assert_eq!(tracker.update(&det).len(), 1); // hit 3: confirmed
    }

    #[test]
    fn track_dropped_after_max_age() {
        let mut tracker = Tracker::new(TrackerConfig {
            min_hits: 1,
            max_age: 2,
            ..TrackerConfig::default()
        });
        let det = vec![BBox::new(100.0, 100.0, 50.0, 100.0)];
        tracker.update(&det);
        assert_eq!(tracker.tracks().len(), 1);
        for _ in 0..3 {
            tracker.update(&[]);
        }
        assert!(tracker.tracks().is_empty());
    }

    #[test]
    fn multiple_objects_keep_distinct_ids() {
        let mut scene = clean_scene(4, 7);
        let mut tracker = Tracker::new(TrackerConfig::default());
        let mut last = Vec::new();
        for _ in 0..60 {
            let f = scene.step();
            last = tracker.update(&f.detections);
        }
        assert_eq!(last.len(), 4, "all four actors tracked");
        let ids: std::collections::HashSet<u64> = last.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 4, "ids must be distinct");
        // No identity churn in a clean scene.
        assert_eq!(tracker.identities_created(), 4);
    }

    #[test]
    fn survives_short_occlusion_without_id_switch() {
        let mut scene = clean_scene(1, 3);
        let mut tracker = Tracker::new(TrackerConfig::default());
        let mut ids = std::collections::HashSet::new();
        for frame in 0..80 {
            let f = scene.step();
            // Occlude frames 40-42: the Kalman prediction must bridge it.
            let dets = if (40..43).contains(&frame) {
                Vec::new()
            } else {
                f.detections
            };
            for (id, _) in tracker.update(&dets) {
                ids.insert(id);
            }
        }
        assert_eq!(ids.len(), 1, "occlusion must not change identity: {ids:?}");
    }

    #[test]
    fn false_positives_do_not_become_confirmed_tracks() {
        // A single one-frame false positive: never reaches min_hits.
        let mut tracker = Tracker::new(TrackerConfig::default());
        let real = BBox::new(500.0, 500.0, 80.0, 200.0);
        for frame in 0..30 {
            let mut dets = vec![BBox::new(500.0 + f64::from(frame), 500.0, 80.0, 200.0)];
            if frame == 10 {
                dets.push(BBox::new(1500.0, 200.0, 60.0, 120.0)); // blip
            }
            tracker.update(&dets);
        }
        assert_eq!(tracker.confirmed_tracks().len(), 1);
        let _ = real;
    }

    #[test]
    fn tracker_follows_noisy_scene_accurately() {
        let mut scene = Scene::new(
            SceneConfig {
                actors: 3,
                miss_rate: 0.05,
                false_positives: 0.2,
                noise_px: 4.0,
                ..SceneConfig::default()
            },
            11,
        );
        let mut tracker = Tracker::new(TrackerConfig::default());
        let mut matched_frames = 0;
        let mut total_frames = 0;
        for _ in 0..150 {
            let f = scene.step();
            let reported = tracker.update(&f.detections);
            if f.index > 10 {
                total_frames += 1;
                // Every reported box should sit on top of some GT box.
                let all_on_gt = reported
                    .iter()
                    .all(|(_, b)| f.ground_truth.iter().any(|(_, gt)| gt.iou(b) > 0.3));
                if all_on_gt && reported.len() >= 2 {
                    matched_frames += 1;
                }
            }
        }
        let quality = f64::from(matched_frames) / f64::from(total_frames);
        assert!(quality > 0.8, "tracking quality {quality}");
    }
}
