//! Small dense matrices over `f64`.
//!
//! Sized for Kalman filtering (7×7 at most in this crate), so clarity
//! beats blocking/SIMD: row-major `Vec<f64>`, naive triple-loop multiply,
//! Gauss–Jordan inversion with partial pivoting.

use serde::{Deserialize, Serialize};

use crate::error::MirrorError;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    ///
    /// Panics on empty or ragged input.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// A column vector.
    #[must_use]
    pub fn column(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "vector needs at least one entry");
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// [`MirrorError::Dimension`] when inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, MirrorError> {
        if self.cols != rhs.rows {
            return Err(MirrorError::Dimension {
                what: format!("{}x{} · {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// [`MirrorError::Dimension`] when shapes disagree.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, MirrorError> {
        self.zip(rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// [`MirrorError::Dimension`] when shapes disagree.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, MirrorError> {
        self.zip(rhs, |a, b| a - b)
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Scalar multiple.
    #[must_use]
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// [`MirrorError::Dimension`] for non-square matrices;
    /// [`MirrorError::Singular`] when no usable pivot exists.
    pub fn inverse(&self) -> Result<Matrix, MirrorError> {
        if self.rows != self.cols {
            return Err(MirrorError::Dimension {
                what: format!("inverse of {}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        // Augmented [A | I].
        let mut aug = vec![vec![0.0; 2 * n]; n];
        for (i, row) in aug.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate().take(n) {
                *cell = self.get(i, j);
            }
            row[n + i] = 1.0;
        }
        for col in 0..n {
            // Partial pivot: largest magnitude in the column.
            let pivot = (col..n)
                .max_by(|&a, &b| {
                    aug[a][col]
                        .abs()
                        .partial_cmp(&aug[b][col].abs())
                        .expect("finite")
                })
                .expect("non-empty range");
            if aug[pivot][col].abs() < 1e-12 {
                return Err(MirrorError::Singular);
            }
            aug.swap(col, pivot);
            let p = aug[col][col];
            for v in &mut aug[col] {
                *v /= p;
            }
            // Pivot row snapshot keeps the borrows disjoint during
            // elimination.
            let pivot_row = aug[col].clone();
            for (r, row) in aug.iter_mut().enumerate() {
                if r != col {
                    let f = row[col];
                    if f != 0.0 {
                        for (cell, &p) in row.iter_mut().zip(&pivot_row) {
                            *cell -= f * p;
                        }
                    }
                }
            }
        }
        let mut out = Matrix::zeros(n, n);
        for (i, row) in aug.iter().enumerate() {
            for j in 0..n {
                out.set(i, j, row[n + j]);
            }
        }
        Ok(out)
    }

    /// Maximum absolute element difference against another matrix (∞-norm
    /// of the difference), for approximate comparisons in tests.
    #[must_use]
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix, MirrorError> {
        if (self.rows, self.cols) != (rhs.rows, rhs.cols) {
            return Err(MirrorError::Dimension {
                what: format!("{}x{} vs {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.mul(&b), Err(MirrorError::Dimension { .. })));
        let c = Matrix::zeros(3, 2);
        assert!(a.mul(&c).is_ok());
        assert!(matches!(a.add(&c), Err(MirrorError::Dimension { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 6.0, 1.0], &[2.0, 5.0, 3.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.inverse().unwrap_err(), MirrorError::Singular);
    }

    #[test]
    fn non_square_inverse_rejected() {
        assert!(matches!(
            Matrix::zeros(2, 3).inverse(),
            Err(MirrorError::Dimension { .. })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let inv = a.inverse().unwrap();
        assert!(inv.max_abs_diff(&a) < 1e-12); // permutation is own inverse
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn column_vector() {
        let v = Matrix::column(&[1.0, 2.0, 3.0]);
        assert_eq!((v.rows(), v.cols()), (3, 1));
        assert_eq!(v.get(2, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_rejected() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]);
    }
}
