//! Error type for the Smart Mirror components.

use std::error::Error;
use std::fmt;

/// Errors produced by the Smart Mirror components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MirrorError {
    /// A matrix operation received incompatible dimensions.
    Dimension {
        /// Description of the mismatch.
        what: String,
    },
    /// A matrix inversion hit a (numerically) singular matrix.
    Singular,
    /// A pipeline was configured without any compute device.
    NoDevices,
}

impl fmt::Display for MirrorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MirrorError::Dimension { what } => write!(f, "dimension mismatch: {what}"),
            MirrorError::Singular => write!(f, "matrix is singular"),
            MirrorError::NoDevices => write!(f, "pipeline has no compute devices"),
        }
    }
}

impl Error for MirrorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MirrorError::Singular.to_string().contains("singular"));
        assert!(MirrorError::NoDevices.to_string().contains("devices"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MirrorError>();
    }
}
