//! Kalman filtering for bounding-box tracking.
//!
//! A generic linear [`KalmanFilter`] (predict/update over [`Matrix`]) and
//! the SORT-style [`BoxKalman`] specialization: constant-velocity state
//! `[cx, cy, s, r, vcx, vcy, vs]` where `s` is the box area and `r` the
//! (assumed constant) aspect ratio, observed as `[cx, cy, s, r]`.

use serde::{Deserialize, Serialize};

use crate::error::MirrorError;
use crate::geometry::BBox;
use crate::matrix::Matrix;

/// A generic linear Kalman filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KalmanFilter {
    /// State estimate (n×1).
    pub x: Matrix,
    /// State covariance (n×n).
    pub p: Matrix,
}

impl KalmanFilter {
    /// A filter with initial state and covariance.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a column vector or `p` not square of matching
    /// size.
    #[must_use]
    pub fn new(x: Matrix, p: Matrix) -> Self {
        assert_eq!(x.cols(), 1, "state must be a column vector");
        assert_eq!(p.rows(), p.cols(), "covariance must be square");
        assert_eq!(p.rows(), x.rows(), "covariance size must match state");
        KalmanFilter { x, p }
    }

    /// Predict step: `x ← F x`, `P ← F P Fᵀ + Q`.
    ///
    /// # Errors
    ///
    /// [`MirrorError::Dimension`] on shape mismatches.
    pub fn predict(&mut self, f: &Matrix, q: &Matrix) -> Result<(), MirrorError> {
        self.x = f.mul(&self.x)?;
        self.p = f.mul(&self.p)?.mul(&f.transpose())?.add(q)?;
        Ok(())
    }

    /// Update step with measurement `z`, model `H` and noise `R`:
    /// standard Kalman gain `K = P Hᵀ (H P Hᵀ + R)⁻¹`.
    ///
    /// # Errors
    ///
    /// [`MirrorError::Dimension`] on shape mismatches;
    /// [`MirrorError::Singular`] if the innovation covariance cannot be
    /// inverted.
    pub fn update(&mut self, z: &Matrix, h: &Matrix, r: &Matrix) -> Result<(), MirrorError> {
        let innovation = z.sub(&h.mul(&self.x)?)?;
        let s = h.mul(&self.p)?.mul(&h.transpose())?.add(r)?;
        let k = self.p.mul(&h.transpose())?.mul(&s.inverse()?)?;
        self.x = self.x.add(&k.mul(&innovation)?)?;
        let i = Matrix::identity(self.p.rows());
        self.p = i.sub(&k.mul(h)?)?.mul(&self.p)?;
        Ok(())
    }
}

/// SORT-style bounding-box Kalman tracker state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxKalman {
    kf: KalmanFilter,
}

impl BoxKalman {
    /// Initialize from a first detection.
    #[must_use]
    pub fn new(bbox: &BBox) -> Self {
        let x = Matrix::column(&[bbox.cx, bbox.cy, bbox.area(), bbox.aspect(), 0.0, 0.0, 0.0]);
        // High uncertainty on the unobserved velocities.
        let mut p = Matrix::identity(7).scale(10.0);
        for i in 4..7 {
            p.set(i, i, 1000.0);
        }
        BoxKalman {
            kf: KalmanFilter::new(x, p),
        }
    }

    /// Constant-velocity transition (dt = 1 frame).
    fn transition() -> Matrix {
        let mut f = Matrix::identity(7);
        f.set(0, 4, 1.0); // cx += vcx
        f.set(1, 5, 1.0); // cy += vcy
        f.set(2, 6, 1.0); // s  += vs
        f
    }

    fn measurement_model() -> Matrix {
        let mut h = Matrix::zeros(4, 7);
        for i in 0..4 {
            h.set(i, i, 1.0);
        }
        h
    }

    /// Predict the next-frame box.
    ///
    /// # Errors
    ///
    /// Propagates matrix errors (shapes are internally consistent, so
    /// this is effectively infallible).
    pub fn predict(&mut self) -> Result<BBox, MirrorError> {
        let f = Self::transition();
        let q = Matrix::identity(7).scale(0.01);
        self.kf.predict(&f, &q)?;
        Ok(self.current())
    }

    /// Fold in a matched detection.
    ///
    /// # Errors
    ///
    /// Propagates matrix errors.
    pub fn update(&mut self, bbox: &BBox) -> Result<(), MirrorError> {
        let z = Matrix::column(&[bbox.cx, bbox.cy, bbox.area(), bbox.aspect()]);
        let h = Self::measurement_model();
        let r = Matrix::identity(4).scale(1.0);
        self.kf.update(&z, &h, &r)
    }

    /// The current state as a bounding box.
    #[must_use]
    pub fn current(&self) -> BBox {
        let cx = self.kf.x.get(0, 0);
        let cy = self.kf.x.get(1, 0);
        let s = self.kf.x.get(2, 0).max(1e-6);
        let r = self.kf.x.get(3, 0).max(1e-6);
        // s = w·h, r = w/h  ⇒  w = sqrt(s·r), h = sqrt(s/r).
        let w = (s * r).sqrt();
        let h = (s / r).sqrt();
        BBox::new(cx, cy, w, h)
    }

    /// Current velocity estimate `(vcx, vcy)`.
    #[must_use]
    pub fn velocity(&self) -> (f64, f64) {
        (self.kf.x.get(4, 0), self.kf.x.get(5, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_matches_detection() {
        let b = BBox::new(10.0, 20.0, 4.0, 2.0);
        let k = BoxKalman::new(&b);
        let c = k.current();
        assert!((c.cx - 10.0).abs() < 1e-9);
        assert!((c.cy - 20.0).abs() < 1e-9);
        assert!((c.area() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn learns_constant_velocity() {
        // Object moving +2 px/frame in x: after several updates the filter
        // predicts ahead of the last seen position.
        let mut k = BoxKalman::new(&BBox::new(0.0, 0.0, 10.0, 10.0));
        for i in 1..=20 {
            k.predict().unwrap();
            k.update(&BBox::new(2.0 * f64::from(i), 0.0, 10.0, 10.0))
                .unwrap();
        }
        let (vx, vy) = k.velocity();
        assert!((vx - 2.0).abs() < 0.3, "vx {vx}");
        assert!(vy.abs() < 0.2, "vy {vy}");
        let pred = k.predict().unwrap();
        assert!(pred.cx > 40.0, "prediction should lead: {}", pred.cx);
    }

    #[test]
    fn update_pulls_toward_measurement() {
        let mut k = BoxKalman::new(&BBox::new(0.0, 0.0, 10.0, 10.0));
        k.predict().unwrap();
        k.update(&BBox::new(5.0, 5.0, 10.0, 10.0)).unwrap();
        let c = k.current();
        assert!(c.cx > 2.0 && c.cx < 5.5, "cx {}", c.cx);
        assert!(c.cy > 2.0 && c.cy < 5.5, "cy {}", c.cy);
    }

    #[test]
    fn covariance_shrinks_with_updates() {
        let mut k = BoxKalman::new(&BBox::new(0.0, 0.0, 10.0, 10.0));
        let before = k.kf.p.get(0, 0);
        for _ in 0..5 {
            k.predict().unwrap();
            k.update(&BBox::new(0.0, 0.0, 10.0, 10.0)).unwrap();
        }
        let after = k.kf.p.get(0, 0);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn prediction_without_updates_keeps_box_sane() {
        let mut k = BoxKalman::new(&BBox::new(50.0, 50.0, 20.0, 10.0));
        for _ in 0..10 {
            k.predict().unwrap();
        }
        let c = k.current();
        assert!(c.w > 0.0 && c.h > 0.0);
        assert!((c.cx - 50.0).abs() < 1.0, "stationary init should stay");
    }

    #[test]
    fn generic_filter_validates_shapes() {
        let x = Matrix::column(&[0.0, 0.0]);
        let p = Matrix::identity(2);
        let mut kf = KalmanFilter::new(x, p);
        let bad_f = Matrix::identity(3);
        assert!(kf.predict(&bad_f, &Matrix::identity(3)).is_err());
    }

    #[test]
    #[should_panic(expected = "column vector")]
    fn non_vector_state_rejected() {
        let _ = KalmanFilter::new(Matrix::identity(2), Matrix::identity(2));
    }
}
