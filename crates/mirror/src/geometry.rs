//! Bounding boxes and overlap metrics.

use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in pixel coordinates, stored as center
/// plus size (the Kalman filter's natural parameterization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Center x.
    pub cx: f64,
    /// Center y.
    pub cy: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl BBox {
    /// A box from its center and size.
    ///
    /// # Panics
    ///
    /// Panics if width or height is negative.
    #[must_use]
    pub fn new(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        assert!(w >= 0.0 && h >= 0.0, "box size must be non-negative");
        BBox { cx, cy, w, h }
    }

    /// A box from corner coordinates `(x1, y1)-(x2, y2)`.
    #[must_use]
    pub fn from_corners(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        let (x1, x2) = (x1.min(x2), x1.max(x2));
        let (y1, y2) = (y1.min(y2), y1.max(y2));
        BBox::new((x1 + x2) / 2.0, (y1 + y2) / 2.0, x2 - x1, y2 - y1)
    }

    /// Left edge.
    #[must_use]
    pub fn x1(&self) -> f64 {
        self.cx - self.w / 2.0
    }

    /// Top edge.
    #[must_use]
    pub fn y1(&self) -> f64 {
        self.cy - self.h / 2.0
    }

    /// Right edge.
    #[must_use]
    pub fn x2(&self) -> f64 {
        self.cx + self.w / 2.0
    }

    /// Bottom edge.
    #[must_use]
    pub fn y2(&self) -> f64 {
        self.cy + self.h / 2.0
    }

    /// Area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Aspect ratio `w / h` (`0` for degenerate boxes).
    #[must_use]
    pub fn aspect(&self) -> f64 {
        if self.h <= 0.0 {
            0.0
        } else {
            self.w / self.h
        }
    }

    /// Intersection area with another box.
    #[must_use]
    pub fn intersection(&self, other: &BBox) -> f64 {
        let iw = (self.x2().min(other.x2()) - self.x1().max(other.x1())).max(0.0);
        let ih = (self.y2().min(other.y2()) - self.y1().max(other.y1())).max(0.0);
        iw * ih
    }

    /// Intersection-over-union in `[0, 1]`.
    ///
    /// ```
    /// use legato_mirror::geometry::BBox;
    /// let a = BBox::new(0.0, 0.0, 2.0, 2.0);
    /// assert_eq!(a.iou(&a), 1.0);
    /// let b = BBox::new(10.0, 10.0, 2.0, 2.0);
    /// assert_eq!(a.iou(&b), 0.0);
    /// ```
    #[must_use]
    pub fn iou(&self, other: &BBox) -> f64 {
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_round_trip() {
        let b = BBox::from_corners(1.0, 2.0, 5.0, 10.0);
        assert_eq!((b.x1(), b.y1(), b.x2(), b.y2()), (1.0, 2.0, 5.0, 10.0));
        assert_eq!(b.area(), 32.0);
        assert_eq!(b.aspect(), 0.5);
    }

    #[test]
    fn swapped_corners_normalized() {
        let b = BBox::from_corners(5.0, 10.0, 1.0, 2.0);
        assert_eq!((b.x1(), b.y1()), (1.0, 2.0));
    }

    #[test]
    fn iou_half_overlap() {
        let a = BBox::from_corners(0.0, 0.0, 2.0, 2.0);
        let b = BBox::from_corners(1.0, 0.0, 3.0, 2.0);
        // Intersection 2, union 6.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iou_symmetry() {
        let a = BBox::new(3.0, 4.0, 5.0, 2.0);
        let b = BBox::new(4.0, 4.5, 3.0, 3.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-15);
    }

    #[test]
    fn degenerate_boxes() {
        let a = BBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(a.iou(&a), 0.0);
        assert_eq!(a.aspect(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_size_rejected() {
        let _ = BBox::new(0.0, 0.0, -1.0, 1.0);
    }
}
