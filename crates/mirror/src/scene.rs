//! Synthetic living-room scenes with ground truth.
//!
//! Stands in for the Smart Mirror's RGBD camera feed: a configurable
//! number of actors (people) move through the frame with constant
//! velocity plus jitter, bouncing off the walls. Each frame yields the
//! ground-truth boxes and a degraded detection list — misses, false
//! positives, and pixel noise — which is what a YOLO-class detector would
//! hand the tracker.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::geometry::BBox;

/// Scene parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Frame width in pixels.
    pub width: f64,
    /// Frame height in pixels.
    pub height: f64,
    /// Number of actors.
    pub actors: usize,
    /// Probability a present actor is missed by the detector.
    pub miss_rate: f64,
    /// Expected false positives per frame.
    pub false_positives: f64,
    /// Detection center noise (standard-deviation-like half-width, px).
    pub noise_px: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            width: 1920.0,
            height: 1080.0,
            actors: 4,
            miss_rate: 0.05,
            false_positives: 0.1,
            noise_px: 3.0,
        }
    }
}

/// A ground-truth actor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Actor {
    id: usize,
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    w: f64,
    h: f64,
}

/// One frame: ground truth and detections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame index.
    pub index: u64,
    /// Ground-truth `(actor id, box)` pairs.
    pub ground_truth: Vec<(usize, BBox)>,
    /// Noisy detections (unordered, unlabeled).
    pub detections: Vec<BBox>,
}

/// The scene generator.
#[derive(Debug, Clone)]
pub struct Scene {
    config: SceneConfig,
    actors: Vec<Actor>,
    rng: SmallRng,
    frame: u64,
}

impl Scene {
    /// Create a scene with deterministic actor placement per `seed`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions or rates outside `[0, 1]`.
    #[must_use]
    pub fn new(config: SceneConfig, seed: u64) -> Self {
        assert!(
            config.width > 0.0 && config.height > 0.0,
            "frame must have positive size"
        );
        assert!(
            (0.0..=1.0).contains(&config.miss_rate),
            "miss rate must be in [0, 1]"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let actors = (0..config.actors)
            .map(|id| {
                let w = rng.gen_range(60.0..140.0);
                let h = rng.gen_range(180.0..320.0);
                Actor {
                    id,
                    x: rng.gen_range(w..config.width - w),
                    y: rng.gen_range(h..config.height - h).min(config.height - h),
                    vx: rng.gen_range(-6.0..6.0),
                    vy: rng.gen_range(-2.0..2.0),
                    w,
                    h,
                }
            })
            .collect();
        Scene {
            config,
            actors,
            rng,
            frame: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Advance one frame and return it.
    pub fn step(&mut self) -> Frame {
        // Move actors; bounce at walls.
        for a in &mut self.actors {
            a.x += a.vx;
            a.y += a.vy;
            let half_w = a.w / 2.0;
            let half_h = a.h / 2.0;
            if a.x < half_w || a.x > self.config.width - half_w {
                a.vx = -a.vx;
                a.x = a.x.clamp(half_w, self.config.width - half_w);
            }
            if a.y < half_h || a.y > self.config.height - half_h {
                a.vy = -a.vy;
                a.y = a.y.clamp(half_h, self.config.height - half_h);
            }
        }
        let ground_truth: Vec<(usize, BBox)> = self
            .actors
            .iter()
            .map(|a| (a.id, BBox::new(a.x, a.y, a.w, a.h)))
            .collect();

        // Degrade into detections.
        let mut detections = Vec::new();
        for (_, gt) in &ground_truth {
            if self.rng.gen_range(0.0..1.0) < self.config.miss_rate {
                continue;
            }
            let n = self.config.noise_px;
            detections.push(BBox::new(
                gt.cx + self.rng.gen_range(-n..=n),
                gt.cy + self.rng.gen_range(-n..=n),
                (gt.w + self.rng.gen_range(-n..=n)).max(4.0),
                (gt.h + self.rng.gen_range(-n..=n)).max(4.0),
            ));
        }
        // Poisson-ish false positives (Bernoulli per expected count unit).
        let mut fp_budget = self.config.false_positives;
        while fp_budget > 0.0 {
            let p = fp_budget.min(1.0);
            if self.rng.gen_range(0.0..1.0) < p {
                detections.push(BBox::new(
                    self.rng.gen_range(0.0..self.config.width),
                    self.rng.gen_range(0.0..self.config.height),
                    self.rng.gen_range(40.0..120.0),
                    self.rng.gen_range(80.0..240.0),
                ));
            }
            fp_budget -= 1.0;
        }

        self.frame += 1;
        Frame {
            index: self.frame,
            ground_truth,
            detections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> SceneConfig {
        SceneConfig {
            miss_rate: 0.0,
            false_positives: 0.0,
            noise_px: 0.0,
            ..SceneConfig::default()
        }
    }

    #[test]
    fn perfect_detector_sees_every_actor() {
        let mut s = Scene::new(quiet_config(), 1);
        for _ in 0..100 {
            let f = s.step();
            assert_eq!(f.detections.len(), f.ground_truth.len());
        }
    }

    #[test]
    fn actors_stay_in_frame() {
        let mut s = Scene::new(quiet_config(), 2);
        for _ in 0..1000 {
            let f = s.step();
            for (_, b) in &f.ground_truth {
                assert!(b.x1() >= -1.0 && b.x2() <= 1921.0, "box {b:?} escaped");
                assert!(b.y1() >= -1.0 && b.y2() <= 1081.0, "box {b:?} escaped");
            }
        }
    }

    #[test]
    fn actors_actually_move() {
        let mut s = Scene::new(quiet_config(), 3);
        let first = s.step();
        for _ in 0..20 {
            s.step();
        }
        let later = s.step();
        let moved = first
            .ground_truth
            .iter()
            .zip(&later.ground_truth)
            .any(|((_, a), (_, b))| (a.cx - b.cx).abs() > 5.0 || (a.cy - b.cy).abs() > 5.0);
        assert!(moved, "no actor moved in 20 frames");
    }

    #[test]
    fn misses_reduce_detection_count() {
        let cfg = SceneConfig {
            miss_rate: 0.5,
            false_positives: 0.0,
            ..quiet_config()
        };
        let mut s = Scene::new(cfg, 4);
        let total: usize = (0..200).map(|_| s.step().detections.len()).sum();
        // 4 actors × 200 frames × ~50 % ≈ 400.
        assert!((300..500).contains(&total), "total {total}");
    }

    #[test]
    fn false_positives_add_detections() {
        let cfg = SceneConfig {
            false_positives: 2.0,
            ..quiet_config()
        };
        let mut s = Scene::new(cfg, 5);
        let total: usize = (0..200).map(|_| s.step().detections.len()).sum();
        // 4 real + ~2 fake per frame.
        assert!(total > 4 * 200 + 200, "total {total}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = Scene::new(SceneConfig::default(), seed);
            (0..50).map(|_| s.step()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn bad_dimensions_rejected() {
        let cfg = SceneConfig {
            width: 0.0,
            ..SceneConfig::default()
        };
        let _ = Scene::new(cfg, 0);
    }
}
