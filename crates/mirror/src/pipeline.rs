//! End-to-end Smart Mirror pipeline cost model.
//!
//! The paper's baseline: object, gesture and face detection "previously
//! met on a high-end workstation with two NVIDIA GTX 1080 GPGPUs.
//! Currently, the performance … is about 21 FPS at 400 W. Further
//! optimizations … including the use of specialized target architectures
//! like FPGAs or GPU SoCs aim for a power consumption of 50 W at 10 FPS"
//! (§VI). Fig. 9's edge server hosts three self-sustained microservers in
//! h2h PCIe, e.g. `1×CPU + 2×GPU` or `1×CPU + 1×GPU + 1×FPGA`.
//!
//! This module maps the detector stages onto a device set (longest-
//! processing-time-first), derives FPS from the bottleneck device, and
//! integrates power with per-device duty cycles plus a wall-power factor
//! for PSU/display/peripheral losses.

use legato_core::units::{Joule, Seconds, Watt};
use legato_hw::device::{DeviceKind, DeviceSpec};
use serde::{Deserialize, Serialize};

use crate::error::MirrorError;

/// One recognition stage of the mirror (a neural network evaluated per
/// frame).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorStage {
    /// Stage name.
    pub name: String,
    /// Cost of one evaluation in GFLOPs.
    pub gflops: f64,
}

impl DetectorStage {
    /// A stage with the given per-frame cost.
    ///
    /// # Panics
    ///
    /// Panics if `gflops` is not positive.
    #[must_use]
    pub fn new(name: impl Into<String>, gflops: f64) -> Self {
        assert!(gflops > 0.0, "stage cost must be positive");
        DetectorStage {
            name: name.into(),
            gflops,
        }
    }
}

/// The full-size workstation stages: YOLOv3 object detection (65.9 GFLOPs
/// at 416×416) plus face and gesture networks.
#[must_use]
pub fn workstation_stages() -> Vec<DetectorStage> {
    vec![
        DetectorStage::new("object-yolov3", 65.9),
        DetectorStage::new("face", 12.0),
        DetectorStage::new("gesture", 20.0),
    ]
}

/// Edge-optimized stages: the paper's "optimizations on the implementation
/// and algorithmic level" shrink the auxiliary networks.
#[must_use]
pub fn edge_stages() -> Vec<DetectorStage> {
    vec![
        DetectorStage::new("object-yolov3", 65.9),
        DetectorStage::new("face-lite", 8.0),
        DetectorStage::new("gesture-lite", 12.0),
    ]
}

/// Achievable fraction of peak FLOPs for CNN inference on each device
/// class. GPUs reach a modest fraction of peak on YOLO-class layer mixes;
/// FPGA/DFE dataflow implementations pipeline much closer to their
/// (lower) peak.
#[must_use]
pub fn inference_utilization(kind: DeviceKind) -> f64 {
    match kind {
        DeviceKind::Gpu => 0.17,
        DeviceKind::Fpga => 0.45,
        DeviceKind::Dfe => 0.50,
        DeviceKind::Soc => 0.30,
        DeviceKind::CpuX86 => 0.08,
        DeviceKind::CpuArm => 0.06,
        _ => 0.10,
    }
}

/// Time for one evaluation of `stage` on `device`.
#[must_use]
pub fn stage_time(stage: &DetectorStage, device: &DeviceSpec) -> Seconds {
    let eff = device
        .kind
        .efficiency(legato_core::task::TaskKind::Inference);
    let util = inference_utilization(device.kind);
    Seconds(stage.gflops * 1e9 / (device.peak_flops * eff * util))
}

/// Fig. 9 edge-server microserver compositions ("the modular approach
/// allows to quickly evaluate different microserver compositions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeConfig {
    /// 1× ARM CPU + 2× GPU SoC (Jetson-class).
    CpuTwoGpuSoc,
    /// 1× ARM CPU + 1× GPU SoC + 1× FPGA SoC.
    CpuGpuSocFpga,
    /// 1× ARM CPU + 2× FPGA SoC.
    CpuTwoFpga,
}

impl EdgeConfig {
    /// All Fig. 9 compositions.
    pub const ALL: [EdgeConfig; 3] = [
        EdgeConfig::CpuTwoGpuSoc,
        EdgeConfig::CpuGpuSocFpga,
        EdgeConfig::CpuTwoFpga,
    ];

    /// The three microserver modules of this composition.
    #[must_use]
    pub fn devices(self) -> Vec<DeviceSpec> {
        match self {
            EdgeConfig::CpuTwoGpuSoc => vec![
                DeviceSpec::arm64(),
                DeviceSpec::jetson_soc(),
                DeviceSpec::jetson_soc(),
            ],
            EdgeConfig::CpuGpuSocFpga => vec![
                DeviceSpec::arm64(),
                DeviceSpec::jetson_soc(),
                DeviceSpec::fpga_kintex(),
            ],
            EdgeConfig::CpuTwoFpga => vec![
                DeviceSpec::arm64(),
                DeviceSpec::fpga_kintex(),
                DeviceSpec::fpga_kintex(),
            ],
        }
    }
}

impl std::fmt::Display for EdgeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EdgeConfig::CpuTwoGpuSoc => "CPU + 2x GPU-SoC",
            EdgeConfig::CpuGpuSocFpga => "CPU + GPU-SoC + FPGA",
            EdgeConfig::CpuTwoFpga => "CPU + 2x FPGA",
        };
        f.write_str(s)
    }
}

/// Performance/power figures of one pipeline evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirrorPerf {
    /// Sustained frames per second (bottleneck-device bound).
    pub fps: f64,
    /// Per-frame latency.
    pub frame_time: Seconds,
    /// Wall power while running.
    pub power: Watt,
    /// Energy per processed frame.
    pub energy_per_frame: Joule,
    /// `(stage name, device name)` assignments.
    pub assignments: Vec<(String, String)>,
}

/// A mirror pipeline: recognition stages over a device set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirrorPipeline {
    /// Compute devices available (microserver modules or GPUs).
    pub devices: Vec<DeviceSpec>,
    /// Recognition stages run on every frame.
    pub stages: Vec<DetectorStage>,
    /// CPU-side tracking/overlay cost per frame (Kalman + Hungarian +
    /// rendering).
    pub tracker_time: Seconds,
    /// Wall-power multiplier for PSU losses and peripherals.
    pub wall_factor: f64,
    /// Constant extra draw (display electronics, camera).
    pub base_power: Watt,
}

impl MirrorPipeline {
    /// The paper's baseline: a workstation with two GTX 1080s and a
    /// desktop CPU, full-size networks.
    #[must_use]
    pub fn workstation() -> Self {
        MirrorPipeline {
            devices: vec![
                DeviceSpec::gtx1080(),
                DeviceSpec::gtx1080(),
                DeviceSpec::xeon_x86(),
            ],
            stages: workstation_stages(),
            tracker_time: Seconds::from_millis(2.0),
            wall_factor: 1.25,
            base_power: Watt(12.0),
        }
    }

    /// A Fig. 9 edge server in the given composition, with edge-optimized
    /// networks.
    #[must_use]
    pub fn edge_server(config: EdgeConfig) -> Self {
        MirrorPipeline {
            devices: config.devices(),
            stages: edge_stages(),
            tracker_time: Seconds::from_millis(4.0),
            wall_factor: 1.15,
            base_power: Watt(8.0),
        }
    }

    /// Evaluate the pipeline: assign stages to devices (longest stage
    /// first onto the least-loaded capable device), bottleneck gives the
    /// frame time, duty cycles give power.
    ///
    /// # Errors
    ///
    /// [`MirrorError::NoDevices`] when no devices are configured.
    pub fn evaluate(&self) -> Result<MirrorPerf, MirrorError> {
        if self.devices.is_empty() {
            return Err(MirrorError::NoDevices);
        }
        // Longest-processing-time-first greedy assignment.
        let mut order: Vec<usize> = (0..self.stages.len()).collect();
        order.sort_by(|&a, &b| {
            self.stages[b]
                .gflops
                .partial_cmp(&self.stages[a].gflops)
                .expect("finite")
        });
        let mut load = vec![Seconds::ZERO; self.devices.len()];
        let mut assignments = Vec::new();
        for si in order {
            let stage = &self.stages[si];
            let best = (0..self.devices.len())
                .min_by(|&a, &b| {
                    let fa = load[a] + stage_time(stage, &self.devices[a]);
                    let fb = load[b] + stage_time(stage, &self.devices[b]);
                    fa.partial_cmp(&fb).expect("finite")
                })
                .expect("devices non-empty");
            load[best] += stage_time(stage, &self.devices[best]);
            assignments.push((stage.name.clone(), self.devices[best].name.clone()));
        }
        // Tracking runs on the most CPU-like device, concurrent with the
        // accelerators.
        let cpu = self
            .devices
            .iter()
            .position(|d| matches!(d.kind, DeviceKind::CpuX86 | DeviceKind::CpuArm))
            .unwrap_or(0);
        load[cpu] += self.tracker_time;
        assignments.push(("tracking".into(), self.devices[cpu].name.clone()));

        let frame_time = load
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max)
            .max(Seconds(1e-9));
        // Per-device duty cycle and power.
        let mut device_power = Watt::ZERO;
        for (d, l) in self.devices.iter().zip(&load) {
            let duty = (l.0 / frame_time.0).clamp(0.0, 1.0);
            device_power += d.idle_power + (d.busy_power - d.idle_power) * duty;
        }
        let power = device_power * self.wall_factor + self.base_power;
        Ok(MirrorPerf {
            fps: 1.0 / frame_time.0,
            frame_time,
            power,
            energy_per_frame: power * frame_time,
            assignments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workstation_matches_paper_baseline() {
        let perf = MirrorPipeline::workstation().evaluate().unwrap();
        // Paper: "about 21 FPS at 400 W".
        assert!(
            (18.0..26.0).contains(&perf.fps),
            "fps {:.1} should be ≈21",
            perf.fps
        );
        assert!(
            (330.0..470.0).contains(&perf.power.0),
            "power {} should be ≈400 W",
            perf.power
        );
    }

    #[test]
    fn edge_server_hits_target_envelope() {
        // Paper target: ≥10 FPS at ≈50 W.
        let perf = MirrorPipeline::edge_server(EdgeConfig::CpuGpuSocFpga)
            .evaluate()
            .unwrap();
        assert!(perf.fps >= 10.0, "fps {:.1}", perf.fps);
        assert!(perf.power.0 <= 70.0, "power {}", perf.power);
    }

    #[test]
    fn edge_cuts_power_by_large_factor() {
        let ws = MirrorPipeline::workstation().evaluate().unwrap();
        let best = EdgeConfig::ALL
            .iter()
            .map(|&c| MirrorPipeline::edge_server(c).evaluate().unwrap())
            .min_by(|a, b| a.power.partial_cmp(&b.power).expect("finite"))
            .unwrap();
        let factor = ws.power / best.power;
        assert!(factor > 5.0, "power reduction {factor:.1}x");
    }

    #[test]
    fn heavy_stage_lands_on_strongest_accelerator() {
        let perf = MirrorPipeline::edge_server(EdgeConfig::CpuGpuSocFpga)
            .evaluate()
            .unwrap();
        let yolo = perf
            .assignments
            .iter()
            .find(|(s, _)| s == "object-yolov3")
            .unwrap();
        assert_eq!(yolo.1, "Kintex FPGA");
    }

    #[test]
    fn tracking_runs_on_cpu() {
        let perf = MirrorPipeline::workstation().evaluate().unwrap();
        let tracking = perf
            .assignments
            .iter()
            .find(|(s, _)| s == "tracking")
            .unwrap();
        assert!(tracking.1.contains("Xeon"));
    }

    #[test]
    fn energy_per_frame_consistent() {
        let perf = MirrorPipeline::workstation().evaluate().unwrap();
        let expect = perf.power.0 * perf.frame_time.0;
        assert!((perf.energy_per_frame.0 - expect).abs() < 1e-9);
    }

    #[test]
    fn all_edge_configs_evaluate() {
        for c in EdgeConfig::ALL {
            let p = MirrorPipeline::edge_server(c).evaluate().unwrap();
            assert!(p.fps > 1.0, "{c}: {:.1} fps", p.fps);
            assert!(p.power.0 < 100.0, "{c}: {}", p.power);
        }
    }

    #[test]
    fn no_devices_rejected() {
        let p = MirrorPipeline {
            devices: vec![],
            stages: edge_stages(),
            tracker_time: Seconds::ZERO,
            wall_factor: 1.0,
            base_power: Watt::ZERO,
        };
        assert_eq!(p.evaluate(), Err(MirrorError::NoDevices));
    }

    #[test]
    #[should_panic(expected = "stage cost must be positive")]
    fn stage_validation() {
        let _ = DetectorStage::new("bad", 0.0);
    }
}
