//! The Hungarian (Kuhn–Munkres) assignment algorithm.
//!
//! Minimizes total cost of a row→column assignment in O(n³) using the
//! potentials formulation. The tracker uses it to match predicted tracks
//! to detections under an IoU-based cost, exactly as the Smart Mirror
//! pipeline does ("Kalman and Hungarian filters are used to keep track",
//! paper §VI).

/// Cost used to pad rectangular problems; assignments at or above this
/// cost are reported as unassigned.
const PAD_COST: f64 = 1.0e9;

/// Solve the minimum-cost assignment for a (possibly rectangular) cost
/// matrix given as rows. Returns, per row, the column it is assigned to
/// (`None` when more rows than columns leave it unmatched, or when its
/// only option was a padded/forbidden cell).
///
/// Entries of `f64::INFINITY` mark forbidden pairs.
///
/// # Panics
///
/// Panics on empty or ragged input.
///
/// ```
/// use legato_mirror::hungarian::assign;
/// let cost = vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ];
/// // Optimal: row0→col1? No: row1 wants col1 too. Minimum total is 5.
/// let a = assign(&cost);
/// let total: f64 = a.iter().enumerate()
///     .map(|(r, c)| cost[r][c.unwrap()])
///     .sum();
/// assert_eq!(total, 5.0);
/// ```
#[must_use]
pub fn assign(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    assert!(!cost.is_empty(), "cost matrix needs at least one row");
    let rows = cost.len();
    let cols = cost[0].len();
    assert!(cols > 0, "cost matrix needs at least one column");
    assert!(
        cost.iter().all(|r| r.len() == cols),
        "cost matrix must be rectangular"
    );

    // Pad to rows ≤ cols with expensive dummy columns.
    let m = cols.max(rows);
    let a = |i: usize, j: usize| -> f64 {
        if j < cols {
            let v = cost[i][j];
            if v.is_finite() {
                v
            } else {
                PAD_COST * 2.0
            }
        } else {
            PAD_COST
        }
    };

    // e-maxx potentials algorithm, 1-indexed.
    let n = rows;
    let mut u = vec![0.0_f64; n + 1];
    let mut v = vec![0.0_f64; m + 1];
    let mut p = vec![0_usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0_usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0_usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0_usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = a(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![None; rows];
    for j in 1..=m {
        let row = p[j];
        if row == 0 {
            continue;
        }
        if j <= cols {
            // Forbidden cells count as unassigned.
            if cost[row - 1][j - 1].is_finite() {
                result[row - 1] = Some(j - 1);
            }
        }
    }
    result
}

/// Total cost of an assignment (skipping unassigned rows).
#[must_use]
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(r, c)| c.map(|c| cost[r][c]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force optimum over all row→column injections.
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let rows = cost.len();
        let cols = cost[0].len();
        let mut cols_perm: Vec<usize> = (0..cols).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols_perm, 0, &mut |perm| {
            let total: f64 = (0..rows.min(cols)).map(|r| cost[r][perm[r]]).sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn identity_costs() {
        let cost = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        assert_eq!(assign(&cost), vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn classic_example() {
        // A well-known 4x4 instance; optimum = 13.
        let cost = vec![
            vec![82.0, 83.0, 69.0, 92.0],
            vec![77.0, 37.0, 49.0, 92.0],
            vec![11.0, 69.0, 5.0, 86.0],
            vec![8.0, 9.0, 98.0, 23.0],
        ];
        let a = assign(&cost);
        let total = assignment_cost(&cost, &a);
        assert_eq!(total, 140.0); // 69 + 37 + 11 + 23
    }

    #[test]
    fn rectangular_more_columns() {
        let cost = vec![vec![5.0, 1.0, 9.0], vec![2.0, 8.0, 3.0]];
        let a = assign(&cost);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_more_rows_leaves_row_unassigned() {
        let cost = vec![vec![1.0], vec![2.0], vec![3.0]];
        let a = assign(&cost);
        let assigned: Vec<usize> = a.iter().flatten().copied().collect();
        assert_eq!(assigned, vec![0]);
        assert_eq!(a[0], Some(0), "cheapest row gets the only column");
        assert_eq!(a.iter().filter(|x| x.is_none()).count(), 2);
    }

    #[test]
    fn forbidden_edges_respected() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, 1.0], vec![1.0, inf]];
        let a = assign(&cost);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn fully_forbidden_row_unassigned() {
        let inf = f64::INFINITY;
        let cost = vec![vec![1.0, 2.0], vec![inf, inf]];
        let a = assign(&cost);
        assert_eq!(a[1], None);
        assert_eq!(a[0], Some(0));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(2024);
        for case in 0..60 {
            let rows = rng.gen_range(1..=5);
            let cols = rng.gen_range(rows..=6);
            let cost: Vec<Vec<f64>> = (0..rows)
                .map(|_| {
                    (0..cols)
                        .map(|_| f64::from(rng.gen_range(0..100)))
                        .collect()
                })
                .collect();
            let a = assign(&cost);
            let total = assignment_cost(&cost, &a);
            let best = brute_force(&cost);
            assert!(
                (total - best).abs() < 1e-9,
                "case {case}: hungarian {total} vs brute {best} for {cost:?}"
            );
        }
    }

    #[test]
    fn single_cell() {
        assert_eq!(assign(&[vec![7.0]]), vec![Some(0)]);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_rejected() {
        let _ = assign(&[]);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_rejected() {
        let _ = assign(&[vec![1.0, 2.0], vec![3.0]]);
    }
}
