//! # legato-mirror
//!
//! The Smart Mirror use case (paper §VI, Fig. 8/9): a privacy-preserving
//! smart-home interface that runs face, object and gesture recognition
//! *locally*. "Neural networks like Yolov3 are providing the detections
//! and Kalman and Hungarian filters are used to keep track."
//!
//! This crate implements the actual mathematics of that pipeline:
//!
//! * [`matrix`] — a small dense linear-algebra kernel (multiply,
//!   transpose, Gauss–Jordan inverse);
//! * [`kalman`] — a constant-velocity Kalman filter over bounding boxes
//!   (SORT-style state `[cx, cy, area, aspect, vx, vy, varea]`);
//! * [`hungarian`] — the Kuhn–Munkres assignment algorithm in O(n³);
//! * [`tracker`] — a multi-object tracker combining both, with track
//!   lifecycle management and identity metrics;
//! * [`scene`] — a synthetic living-room scene generator with misses,
//!   false positives and pixel noise, providing ground truth;
//! * [`pipeline`] — the end-to-end cost model: detector workloads mapped
//!   onto hardware configurations (the 2×GTX1080 workstation of the
//!   paper's baseline vs. the modular 3-microserver edge server of
//!   Fig. 9), yielding FPS and power;
//! * [`nn`] — a from-scratch multilayer perceptron with int8
//!   quantization, used by the ML-under-undervolting ablation (§III-C):
//!   weights live in simulated BRAM and survive — or don't — voltage
//!   underscaling.
//!
//! ## Example
//!
//! ```
//! use legato_mirror::scene::{Scene, SceneConfig};
//! use legato_mirror::tracker::{Tracker, TrackerConfig};
//!
//! let mut scene = Scene::new(SceneConfig::default(), 42);
//! let mut tracker = Tracker::new(TrackerConfig::default());
//! for _ in 0..50 {
//!     let frame = scene.step();
//!     tracker.update(&frame.detections);
//! }
//! assert!(!tracker.confirmed_tracks().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod geometry;
pub mod hungarian;
pub mod kalman;
pub mod matrix;
pub mod nn;
pub mod pipeline;
pub mod scene;
pub mod tracker;

pub use error::MirrorError;
pub use geometry::BBox;
pub use hungarian::assign;
pub use kalman::BoxKalman;
pub use matrix::Matrix;
pub use pipeline::{EdgeConfig, MirrorPerf, MirrorPipeline};
pub use tracker::{Tracker, TrackerConfig};
