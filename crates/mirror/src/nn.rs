//! A from-scratch multilayer perceptron with int8 quantization.
//!
//! Supports the §III-C ablation: "due to inherent resilience of ML models,
//! aggressive undervolting can lead to significant power saving even below
//! the voltage guardband region." The experiment stores quantized weights
//! in simulated BRAM, underscales the rail, and measures accuracy as
//! bit-flips accumulate — the model's classification accuracy degrades
//! gracefully rather than collapsing at the first fault.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One dense layer: `out = tanh(W x + b)` (hidden) or linear (output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    w: Vec<f64>,
    b: Vec<f64>,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut SmallRng) -> Self {
        let scale = (2.0 / in_dim as f64).sqrt();
        Layer {
            in_dim,
            out_dim,
            w: (0..in_dim * out_dim)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
            b: vec![0.0; out_dim],
        }
    }

    fn forward(&self, x: &[f64], activate: bool) -> Vec<f64> {
        (0..self.out_dim)
            .map(|o| {
                let z: f64 = self.b[o]
                    + self.w[o * self.in_dim..(o + 1) * self.in_dim]
                        .iter()
                        .zip(x)
                        .map(|(w, x)| w * x)
                        .sum::<f64>();
                if activate {
                    z.tanh()
                } else {
                    z
                }
            })
            .collect()
    }
}

/// A small fully-connected network with tanh hidden layers and a linear
/// output layer, trained by SGD on mean squared error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Random network with the given layer dimensions, e.g. `[2, 16, 2]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    #[must_use]
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need input and output dimensions");
        let mut rng = SmallRng::seed_from_u64(seed);
        Mlp {
            layers: dims
                .windows(2)
                .map(|w| Layer::new(w[0], w[1], &mut rng))
                .collect(),
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total weight (and bias) parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass; returns the output layer activations (logits).
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let n = self.layers.len();
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            cur = layer.forward(&cur, i + 1 < n);
        }
        cur
    }

    /// Predicted class (argmax of logits).
    #[must_use]
    pub fn classify(&self, x: &[f64]) -> usize {
        let out = self.forward(x);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// One SGD epoch over `(input, class)` pairs with one-hot MSE loss.
    /// Returns the mean loss.
    pub fn train_epoch(&mut self, data: &[(Vec<f64>, usize)], lr: f64) -> f64 {
        let n_layers = self.layers.len();
        let mut total_loss = 0.0;
        for (x, class) in data {
            // Forward, caching activations.
            let mut acts: Vec<Vec<f64>> = vec![x.clone()];
            for (i, layer) in self.layers.iter().enumerate() {
                let a = layer.forward(acts.last().expect("seeded"), i + 1 < n_layers);
                acts.push(a);
            }
            let out = acts.last().expect("non-empty").clone();
            let target: Vec<f64> = (0..out.len())
                .map(|i| if i == *class { 1.0 } else { -1.0 })
                .collect();
            total_loss += out
                .iter()
                .zip(&target)
                .map(|(o, t)| (o - t).powi(2))
                .sum::<f64>()
                / out.len() as f64;

            // Backward.
            let mut delta: Vec<f64> = out
                .iter()
                .zip(&target)
                .map(|(o, t)| 2.0 * (o - t) / out.len() as f64)
                .collect();
            for li in (0..n_layers).rev() {
                let input = acts[li].clone();
                let output = acts[li + 1].clone();
                // tanh derivative on hidden layers.
                if li + 1 < n_layers {
                    for (d, o) in delta.iter_mut().zip(&output) {
                        *d *= 1.0 - o * o;
                    }
                }
                let layer = &mut self.layers[li];
                let mut next_delta = vec![0.0; layer.in_dim];
                for (o, &d) in delta.iter().enumerate().take(layer.out_dim) {
                    for i in 0..layer.in_dim {
                        next_delta[i] += layer.w[o * layer.in_dim + i] * d;
                        layer.w[o * layer.in_dim + i] -= lr * d * input[i];
                    }
                    layer.b[o] -= lr * d;
                }
                delta = next_delta;
            }
        }
        total_loss / data.len() as f64
    }

    /// Classification accuracy on `(input, class)` pairs.
    #[must_use]
    pub fn accuracy(&self, data: &[(Vec<f64>, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(x, c)| self.classify(x) == *c).count();
        correct as f64 / data.len() as f64
    }
}

/// A two-class Gaussian-blob dataset (linearly separable up to overlap).
#[must_use]
pub fn two_blobs(n: usize, seed: u64) -> Vec<(Vec<f64>, usize)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let gauss = move |rng: &mut SmallRng| {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        (-2.0 * u1.ln()).sqrt() * u2.cos()
    };
    (0..n)
        .map(|i| {
            let class = i % 2;
            let (cx, cy) = if class == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            (
                vec![cx + 0.6 * gauss(&mut rng), cy + 0.6 * gauss(&mut rng)],
                class,
            )
        })
        .collect()
}

/// An int8-quantized network image suitable for storage in simulated BRAM.
///
/// The byte image holds only the quantized weights/biases (what an FPGA
/// accelerator keeps in on-chip memory); dimensions and scales live
/// off-chip (flash metadata) and are not exposed to bit-flips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    dims: Vec<usize>,
    /// Per-layer `(weight scale, bias scale)`.
    scales: Vec<(f64, f64)>,
    /// Quantized parameters, layer by layer: weights then biases.
    pub bytes: Vec<u8>,
}

impl QuantizedMlp {
    /// Quantize a trained network to int8 with per-layer symmetric
    /// scales.
    #[must_use]
    pub fn quantize(mlp: &Mlp) -> Self {
        let mut dims = vec![mlp.layers[0].in_dim];
        dims.extend(mlp.layers.iter().map(|l| l.out_dim));
        let mut scales = Vec::new();
        let mut bytes = Vec::new();
        for layer in &mlp.layers {
            let w_scale = layer
                .w
                .iter()
                .fold(0.0_f64, |m, v| m.max(v.abs()))
                .max(1e-9)
                / 127.0;
            let b_scale = layer
                .b
                .iter()
                .fold(0.0_f64, |m, v| m.max(v.abs()))
                .max(1e-9)
                / 127.0;
            scales.push((w_scale, b_scale));
            bytes.extend(
                layer
                    .w
                    .iter()
                    .map(|v| (v / w_scale).round().clamp(-127.0, 127.0) as i8 as u8),
            );
            bytes.extend(
                layer
                    .b
                    .iter()
                    .map(|v| (v / b_scale).round().clamp(-127.0, 127.0) as i8 as u8),
            );
        }
        QuantizedMlp {
            dims,
            scales,
            bytes,
        }
    }

    /// Size of the byte image.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Rebuild a float network from (possibly corrupted) bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` has the wrong length for this network's
    /// dimensions.
    #[must_use]
    pub fn dequantize_from(&self, bytes: &[u8]) -> Mlp {
        assert_eq!(bytes.len(), self.bytes.len(), "byte image length mismatch");
        let mut layers = Vec::new();
        let mut pos = 0;
        for (li, win) in self.dims.windows(2).enumerate() {
            let (in_dim, out_dim) = (win[0], win[1]);
            let (w_scale, b_scale) = self.scales[li];
            let w: Vec<f64> = bytes[pos..pos + in_dim * out_dim]
                .iter()
                .map(|&b| f64::from(b as i8) * w_scale)
                .collect();
            pos += in_dim * out_dim;
            let b: Vec<f64> = bytes[pos..pos + out_dim]
                .iter()
                .map(|&v| f64::from(v as i8) * b_scale)
                .collect();
            pos += out_dim;
            layers.push(Layer {
                in_dim,
                out_dim,
                w,
                b,
            });
        }
        Mlp { layers }
    }

    /// Rebuild from this image's own (uncorrupted) bytes.
    #[must_use]
    pub fn dequantize(&self) -> Mlp {
        self.dequantize_from(&self.bytes)
    }
}

/// Train a blob classifier with the given layer dimensions.
#[must_use]
pub fn train_blob_classifier_with(dims: &[usize], seed: u64) -> (Mlp, Vec<(Vec<f64>, usize)>) {
    let train = two_blobs(400, seed);
    let test = two_blobs(400, seed.wrapping_add(1));
    let mut mlp = Mlp::new(dims, seed);
    for _ in 0..120 {
        mlp.train_epoch(&train, 0.03);
    }
    (mlp, test)
}

/// Train the standard ablation model: a `[2, 16, 2]` MLP on two blobs.
#[must_use]
pub fn train_blob_classifier(seed: u64) -> (Mlp, Vec<(Vec<f64>, usize)>) {
    train_blob_classifier_with(&[2, 16, 2], seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reaches_high_accuracy() {
        let (mlp, test) = train_blob_classifier(7);
        let acc = mlp.accuracy(&test);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases_during_training() {
        let data = two_blobs(200, 1);
        let mut mlp = Mlp::new(&[2, 8, 2], 1);
        let first = mlp.train_epoch(&data, 0.03);
        for _ in 0..50 {
            mlp.train_epoch(&data, 0.03);
        }
        let last = mlp.train_epoch(&data, 0.03);
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn quantization_preserves_accuracy() {
        let (mlp, test) = train_blob_classifier(11);
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        let drop = mlp.accuracy(&test) - deq.accuracy(&test);
        assert!(drop.abs() < 0.03, "quantization cost {drop}");
    }

    #[test]
    fn corrupted_bytes_degrade_gracefully() {
        // The §III-C resilience claim: a few flipped bits should not
        // destroy the model.
        let (mlp, test) = train_blob_classifier(13);
        let q = QuantizedMlp::quantize(&mlp);
        let mut bytes = q.bytes.clone();
        // Flip one low-order bit in 2 % of the bytes.
        let mut rng = SmallRng::seed_from_u64(99);
        let flips = (bytes.len() / 50).max(1);
        for _ in 0..flips {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 0x01;
        }
        let corrupted = q.dequantize_from(&bytes);
        let acc = corrupted.accuracy(&test);
        assert!(acc > 0.85, "accuracy after small corruption {acc}");
    }

    #[test]
    fn heavy_corruption_destroys_accuracy() {
        let (mlp, test) = train_blob_classifier(17);
        let q = QuantizedMlp::quantize(&mlp);
        let mut rng = SmallRng::seed_from_u64(5);
        let bytes: Vec<u8> = q.bytes.iter().map(|_| rng.gen_range(0..=255)).collect();
        let destroyed = q.dequantize_from(&bytes);
        let acc = destroyed.accuracy(&test);
        assert!(acc < 0.8, "random weights should not classify well: {acc}");
        let _ = mlp;
    }

    #[test]
    fn parameter_count() {
        let mlp = Mlp::new(&[2, 16, 2], 0);
        // 2·16 + 16 biases + 16·2 + 2 biases = 82.
        assert_eq!(mlp.parameter_count(), 82);
        assert_eq!(QuantizedMlp::quantize(&mlp).byte_len(), 82);
    }

    #[test]
    fn forward_shape() {
        let mlp = Mlp::new(&[3, 5, 4], 0);
        assert_eq!(mlp.forward(&[0.0, 1.0, 2.0]).len(), 4);
        assert_eq!(mlp.layer_count(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Mlp::new(&[2, 4, 2], 9);
        let b = Mlp::new(&[2, 4, 2], 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input and output dimensions")]
    fn dims_validated() {
        let _ = Mlp::new(&[2], 0);
    }
}
