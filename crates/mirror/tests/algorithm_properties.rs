//! Property-based tests of the Smart Mirror's algorithmic kernels.

use legato_mirror::geometry::BBox;
use legato_mirror::hungarian::{assign, assignment_cost};
use legato_mirror::matrix::Matrix;
use proptest::prelude::*;

fn small_box() -> impl Strategy<Value = BBox> {
    (0.0..100.0f64, 0.0..100.0f64, 1.0..50.0f64, 1.0..50.0f64)
        .prop_map(|(cx, cy, w, h)| BBox::new(cx, cy, w, h))
}

proptest! {
    /// IoU is symmetric, bounded to [0, 1], and 1 exactly on self.
    #[test]
    fn iou_properties(a in small_box(), b in small_box()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    /// Intersection area never exceeds either box's own area.
    #[test]
    fn intersection_bounded(a in small_box(), b in small_box()) {
        let inter = a.intersection(&b);
        prop_assert!(inter <= a.area() + 1e-9);
        prop_assert!(inter <= b.area() + 1e-9);
        prop_assert!(inter >= 0.0);
    }

    /// The Hungarian algorithm's result is a valid injection (no column
    /// used twice) and never beats brute force (checked on small cases).
    #[test]
    fn hungarian_is_optimal_injection(
        rows in 1usize..5,
        cols in 1usize..5,
        cells in prop::collection::vec(0u8..100, 25),
    ) {
        prop_assume!(rows <= cols);
        let cost: Vec<Vec<f64>> = (0..rows)
            .map(|r| (0..cols).map(|c| f64::from(cells[r * 5 + c])).collect())
            .collect();
        let a = assign(&cost);
        // Injection: assigned columns distinct.
        let mut used = std::collections::HashSet::new();
        for col in a.iter().flatten() {
            prop_assert!(used.insert(*col), "column {col} assigned twice");
        }
        // Optimality vs brute force.
        let total = assignment_cost(&cost, &a);
        let best = brute_force(&cost);
        prop_assert!((total - best).abs() < 1e-9, "{total} vs brute {best}");
    }

    /// A random diagonally-dominant matrix is invertible and
    /// `A · A⁻¹ ≈ I`.
    #[test]
    fn inverse_round_trip(
        n in 1usize..6,
        cells in prop::collection::vec(-10.0..10.0f64, 36),
    ) {
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = cells[r * 6 + c];
                    m.set(r, c, v);
                    row_sum += v.abs();
                }
            }
            // Diagonal dominance guarantees invertibility.
            m.set(r, r, row_sum + 1.0 + cells[r * 6 + r].abs());
        }
        let inv = m.inverse().expect("diagonally dominant");
        let prod = m.mul(&inv).expect("square");
        prop_assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-8);
    }

    /// Transpose distributes over products: `(AB)ᵀ = BᵀAᵀ`.
    #[test]
    fn transpose_of_product(
        cells in prop::collection::vec(-5.0..5.0f64, 12),
    ) {
        let a = Matrix::from_rows(&[&cells[0..3], &cells[3..6]]);
        let b = Matrix::from_rows(&[&cells[6..8], &cells[8..10], &cells[10..12]]);
        let left = a.mul(&b).expect("2x3 · 3x2").transpose();
        let right = b.transpose().mul(&a.transpose()).expect("2x3 · 3x2");
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }
}

fn brute_force(cost: &[Vec<f64>]) -> f64 {
    let rows = cost.len();
    let cols = cost[0].len();
    let mut perm: Vec<usize> = (0..cols).collect();
    let mut best = f64::INFINITY;
    permute(&mut perm, 0, &mut |p| {
        let total: f64 = (0..rows.min(cols)).map(|r| cost[r][p[r]]).sum();
        if total < best {
            best = total;
        }
    });
    best
}

fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}
