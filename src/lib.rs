//! # legato
//!
//! A Rust reproduction of **LEGaTO: Low-Energy, Secure, and Resilient
//! Toolset for Heterogeneous Computing** (Salami et al., DATE 2020),
//! re-exporting every subsystem crate of the workspace:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`core`] | `legato-core` | task model, dataflow graph, units, requirements |
//! | [`hw`] | `legato-hw` | simulated devices, memory, storage, RECS\|BOX, communicator |
//! | [`fpga`] | `legato-fpga` | BRAM undervolting model (Fig. 5) |
//! | [`fti`] | `legato-fti` | multi-level GPU/CPU checkpointing (Fig. 6) |
//! | [`runtime`] | `legato-runtime` | OmpSs/XiTAO-style runtime, replication, energy-aware offload |
//! | [`heats`] | `legato-heats` | heterogeneity- and energy-aware cluster scheduler (Fig. 7) |
//! | [`secure`] | `legato-secure` | enclave simulation, sealing, attestation |
//! | [`mirror`] | `legato-mirror` | Smart Mirror use case: detection, Kalman, Hungarian, pipeline |
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` for the
//! experiment index.
//!
//! ## Quick taste
//!
//! ```
//! use legato::runtime::{Policy, Runtime};
//! use legato::core::task::{AccessMode, TaskDescriptor, TaskKind, Work};
//! use legato::hw::device::DeviceSpec;
//!
//! # fn main() -> Result<(), legato::runtime::RuntimeError> {
//! let mut rt = Runtime::new(
//!     vec![DeviceSpec::gtx1080(), DeviceSpec::fpga_kintex()],
//!     Policy::Energy,
//!     1,
//! );
//! rt.submit(
//!     TaskDescriptor::named("infer")
//!         .with_kind(TaskKind::Inference)
//!         .with_work(Work::flops(66.0e9)),
//!     [(0u64, AccessMode::Out)],
//! );
//! let report = rt.run()?;
//! assert!(report.is_correct());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use legato_core as core;
pub use legato_fpga as fpga;
pub use legato_fti as fti;
pub use legato_heats as heats;
pub use legato_hw as hw;
pub use legato_mirror as mirror;
pub use legato_runtime as runtime;
pub use legato_secure as secure;
